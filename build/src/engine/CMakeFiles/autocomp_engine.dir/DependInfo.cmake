
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cluster.cc" "src/engine/CMakeFiles/autocomp_engine.dir/cluster.cc.o" "gcc" "src/engine/CMakeFiles/autocomp_engine.dir/cluster.cc.o.d"
  "/root/repo/src/engine/compaction_runner.cc" "src/engine/CMakeFiles/autocomp_engine.dir/compaction_runner.cc.o" "gcc" "src/engine/CMakeFiles/autocomp_engine.dir/compaction_runner.cc.o.d"
  "/root/repo/src/engine/query_engine.cc" "src/engine/CMakeFiles/autocomp_engine.dir/query_engine.cc.o" "gcc" "src/engine/CMakeFiles/autocomp_engine.dir/query_engine.cc.o.d"
  "/root/repo/src/engine/write_planner.cc" "src/engine/CMakeFiles/autocomp_engine.dir/write_planner.cc.o" "gcc" "src/engine/CMakeFiles/autocomp_engine.dir/write_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autocomp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/autocomp_format.dir/DependInfo.cmake"
  "/root/repo/build/src/lst/CMakeFiles/autocomp_lst.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/autocomp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocomp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
