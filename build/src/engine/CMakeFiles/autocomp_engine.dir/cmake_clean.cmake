file(REMOVE_RECURSE
  "CMakeFiles/autocomp_engine.dir/cluster.cc.o"
  "CMakeFiles/autocomp_engine.dir/cluster.cc.o.d"
  "CMakeFiles/autocomp_engine.dir/compaction_runner.cc.o"
  "CMakeFiles/autocomp_engine.dir/compaction_runner.cc.o.d"
  "CMakeFiles/autocomp_engine.dir/query_engine.cc.o"
  "CMakeFiles/autocomp_engine.dir/query_engine.cc.o.d"
  "CMakeFiles/autocomp_engine.dir/write_planner.cc.o"
  "CMakeFiles/autocomp_engine.dir/write_planner.cc.o.d"
  "libautocomp_engine.a"
  "libautocomp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
