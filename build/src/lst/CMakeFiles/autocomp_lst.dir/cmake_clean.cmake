file(REMOVE_RECURSE
  "CMakeFiles/autocomp_lst.dir/history_validator.cc.o"
  "CMakeFiles/autocomp_lst.dir/history_validator.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/metadata_json.cc.o"
  "CMakeFiles/autocomp_lst.dir/metadata_json.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/metadata_tables.cc.o"
  "CMakeFiles/autocomp_lst.dir/metadata_tables.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/partition.cc.o"
  "CMakeFiles/autocomp_lst.dir/partition.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/table.cc.o"
  "CMakeFiles/autocomp_lst.dir/table.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/table_metadata.cc.o"
  "CMakeFiles/autocomp_lst.dir/table_metadata.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/transaction.cc.o"
  "CMakeFiles/autocomp_lst.dir/transaction.cc.o.d"
  "CMakeFiles/autocomp_lst.dir/types.cc.o"
  "CMakeFiles/autocomp_lst.dir/types.cc.o.d"
  "libautocomp_lst.a"
  "libautocomp_lst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_lst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
