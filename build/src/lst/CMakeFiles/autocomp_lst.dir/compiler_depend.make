# Empty compiler generated dependencies file for autocomp_lst.
# This may be replaced when dependencies are built.
