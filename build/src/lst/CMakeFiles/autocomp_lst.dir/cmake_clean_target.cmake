file(REMOVE_RECURSE
  "libautocomp_lst.a"
)
