
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lst/history_validator.cc" "src/lst/CMakeFiles/autocomp_lst.dir/history_validator.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/history_validator.cc.o.d"
  "/root/repo/src/lst/metadata_json.cc" "src/lst/CMakeFiles/autocomp_lst.dir/metadata_json.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/metadata_json.cc.o.d"
  "/root/repo/src/lst/metadata_tables.cc" "src/lst/CMakeFiles/autocomp_lst.dir/metadata_tables.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/metadata_tables.cc.o.d"
  "/root/repo/src/lst/partition.cc" "src/lst/CMakeFiles/autocomp_lst.dir/partition.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/partition.cc.o.d"
  "/root/repo/src/lst/table.cc" "src/lst/CMakeFiles/autocomp_lst.dir/table.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/table.cc.o.d"
  "/root/repo/src/lst/table_metadata.cc" "src/lst/CMakeFiles/autocomp_lst.dir/table_metadata.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/table_metadata.cc.o.d"
  "/root/repo/src/lst/transaction.cc" "src/lst/CMakeFiles/autocomp_lst.dir/transaction.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/transaction.cc.o.d"
  "/root/repo/src/lst/types.cc" "src/lst/CMakeFiles/autocomp_lst.dir/types.cc.o" "gcc" "src/lst/CMakeFiles/autocomp_lst.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autocomp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocomp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
