file(REMOVE_RECURSE
  "CMakeFiles/autocomp_workload.dir/cab.cc.o"
  "CMakeFiles/autocomp_workload.dir/cab.cc.o.d"
  "CMakeFiles/autocomp_workload.dir/events.cc.o"
  "CMakeFiles/autocomp_workload.dir/events.cc.o.d"
  "CMakeFiles/autocomp_workload.dir/fleet.cc.o"
  "CMakeFiles/autocomp_workload.dir/fleet.cc.o.d"
  "CMakeFiles/autocomp_workload.dir/tpcds.cc.o"
  "CMakeFiles/autocomp_workload.dir/tpcds.cc.o.d"
  "CMakeFiles/autocomp_workload.dir/tpch.cc.o"
  "CMakeFiles/autocomp_workload.dir/tpch.cc.o.d"
  "CMakeFiles/autocomp_workload.dir/trickle.cc.o"
  "CMakeFiles/autocomp_workload.dir/trickle.cc.o.d"
  "libautocomp_workload.a"
  "libautocomp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
