
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cab.cc" "src/workload/CMakeFiles/autocomp_workload.dir/cab.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/cab.cc.o.d"
  "/root/repo/src/workload/events.cc" "src/workload/CMakeFiles/autocomp_workload.dir/events.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/events.cc.o.d"
  "/root/repo/src/workload/fleet.cc" "src/workload/CMakeFiles/autocomp_workload.dir/fleet.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/fleet.cc.o.d"
  "/root/repo/src/workload/tpcds.cc" "src/workload/CMakeFiles/autocomp_workload.dir/tpcds.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/tpcds.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/autocomp_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/tpch.cc.o.d"
  "/root/repo/src/workload/trickle.cc" "src/workload/CMakeFiles/autocomp_workload.dir/trickle.cc.o" "gcc" "src/workload/CMakeFiles/autocomp_workload.dir/trickle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autocomp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lst/CMakeFiles/autocomp_lst.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/autocomp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/autocomp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocomp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/autocomp_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
