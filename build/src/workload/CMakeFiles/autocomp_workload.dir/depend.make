# Empty dependencies file for autocomp_workload.
# This may be replaced when dependencies are built.
