file(REMOVE_RECURSE
  "libautocomp_workload.a"
)
