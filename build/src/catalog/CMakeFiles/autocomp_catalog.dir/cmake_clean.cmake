file(REMOVE_RECURSE
  "CMakeFiles/autocomp_catalog.dir/catalog.cc.o"
  "CMakeFiles/autocomp_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/autocomp_catalog.dir/control_plane.cc.o"
  "CMakeFiles/autocomp_catalog.dir/control_plane.cc.o.d"
  "libautocomp_catalog.a"
  "libautocomp_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
