file(REMOVE_RECURSE
  "libautocomp_catalog.a"
)
