# Empty dependencies file for autocomp_catalog.
# This may be replaced when dependencies are built.
