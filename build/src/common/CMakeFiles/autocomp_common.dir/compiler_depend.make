# Empty compiler generated dependencies file for autocomp_common.
# This may be replaced when dependencies are built.
