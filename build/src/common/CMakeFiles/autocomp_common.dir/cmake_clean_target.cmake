file(REMOVE_RECURSE
  "libautocomp_common.a"
)
