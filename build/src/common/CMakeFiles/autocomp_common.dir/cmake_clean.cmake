file(REMOVE_RECURSE
  "CMakeFiles/autocomp_common.dir/config.cc.o"
  "CMakeFiles/autocomp_common.dir/config.cc.o.d"
  "CMakeFiles/autocomp_common.dir/histogram.cc.o"
  "CMakeFiles/autocomp_common.dir/histogram.cc.o.d"
  "CMakeFiles/autocomp_common.dir/json.cc.o"
  "CMakeFiles/autocomp_common.dir/json.cc.o.d"
  "CMakeFiles/autocomp_common.dir/logging.cc.o"
  "CMakeFiles/autocomp_common.dir/logging.cc.o.d"
  "CMakeFiles/autocomp_common.dir/random.cc.o"
  "CMakeFiles/autocomp_common.dir/random.cc.o.d"
  "CMakeFiles/autocomp_common.dir/status.cc.o"
  "CMakeFiles/autocomp_common.dir/status.cc.o.d"
  "CMakeFiles/autocomp_common.dir/units.cc.o"
  "CMakeFiles/autocomp_common.dir/units.cc.o.d"
  "libautocomp_common.a"
  "libautocomp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
