# Empty compiler generated dependencies file for autocomp_core.
# This may be replaced when dependencies are built.
