file(REMOVE_RECURSE
  "libautocomp_core.a"
)
