file(REMOVE_RECURSE
  "CMakeFiles/autocomp_core.dir/advisor.cc.o"
  "CMakeFiles/autocomp_core.dir/advisor.cc.o.d"
  "CMakeFiles/autocomp_core.dir/filters.cc.o"
  "CMakeFiles/autocomp_core.dir/filters.cc.o.d"
  "CMakeFiles/autocomp_core.dir/observe.cc.o"
  "CMakeFiles/autocomp_core.dir/observe.cc.o.d"
  "CMakeFiles/autocomp_core.dir/pareto.cc.o"
  "CMakeFiles/autocomp_core.dir/pareto.cc.o.d"
  "CMakeFiles/autocomp_core.dir/pipeline.cc.o"
  "CMakeFiles/autocomp_core.dir/pipeline.cc.o.d"
  "CMakeFiles/autocomp_core.dir/ranking.cc.o"
  "CMakeFiles/autocomp_core.dir/ranking.cc.o.d"
  "CMakeFiles/autocomp_core.dir/scheduler.cc.o"
  "CMakeFiles/autocomp_core.dir/scheduler.cc.o.d"
  "CMakeFiles/autocomp_core.dir/traits.cc.o"
  "CMakeFiles/autocomp_core.dir/traits.cc.o.d"
  "CMakeFiles/autocomp_core.dir/triggers.cc.o"
  "CMakeFiles/autocomp_core.dir/triggers.cc.o.d"
  "libautocomp_core.a"
  "libautocomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
