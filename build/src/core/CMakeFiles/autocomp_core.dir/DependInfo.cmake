
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/autocomp_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/filters.cc" "src/core/CMakeFiles/autocomp_core.dir/filters.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/filters.cc.o.d"
  "/root/repo/src/core/observe.cc" "src/core/CMakeFiles/autocomp_core.dir/observe.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/observe.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/autocomp_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/pareto.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/autocomp_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/autocomp_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/ranking.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/autocomp_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/traits.cc" "src/core/CMakeFiles/autocomp_core.dir/traits.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/traits.cc.o.d"
  "/root/repo/src/core/triggers.cc" "src/core/CMakeFiles/autocomp_core.dir/triggers.cc.o" "gcc" "src/core/CMakeFiles/autocomp_core.dir/triggers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autocomp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lst/CMakeFiles/autocomp_lst.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/autocomp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/autocomp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocomp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/autocomp_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
