file(REMOVE_RECURSE
  "libautocomp_sim.a"
)
