file(REMOVE_RECURSE
  "CMakeFiles/autocomp_sim.dir/driver.cc.o"
  "CMakeFiles/autocomp_sim.dir/driver.cc.o.d"
  "CMakeFiles/autocomp_sim.dir/environment.cc.o"
  "CMakeFiles/autocomp_sim.dir/environment.cc.o.d"
  "CMakeFiles/autocomp_sim.dir/lstbench.cc.o"
  "CMakeFiles/autocomp_sim.dir/lstbench.cc.o.d"
  "CMakeFiles/autocomp_sim.dir/metrics.cc.o"
  "CMakeFiles/autocomp_sim.dir/metrics.cc.o.d"
  "CMakeFiles/autocomp_sim.dir/presets.cc.o"
  "CMakeFiles/autocomp_sim.dir/presets.cc.o.d"
  "libautocomp_sim.a"
  "libautocomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
