# Empty dependencies file for autocomp_sim.
# This may be replaced when dependencies are built.
