# Empty dependencies file for autocomp_format.
# This may be replaced when dependencies are built.
