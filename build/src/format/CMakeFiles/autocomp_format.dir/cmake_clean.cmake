file(REMOVE_RECURSE
  "CMakeFiles/autocomp_format.dir/binpack.cc.o"
  "CMakeFiles/autocomp_format.dir/binpack.cc.o.d"
  "CMakeFiles/autocomp_format.dir/columnar.cc.o"
  "CMakeFiles/autocomp_format.dir/columnar.cc.o.d"
  "libautocomp_format.a"
  "libautocomp_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
