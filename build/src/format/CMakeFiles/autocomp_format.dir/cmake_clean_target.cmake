file(REMOVE_RECURSE
  "libautocomp_format.a"
)
