file(REMOVE_RECURSE
  "CMakeFiles/autocomp_storage.dir/filesystem.cc.o"
  "CMakeFiles/autocomp_storage.dir/filesystem.cc.o.d"
  "CMakeFiles/autocomp_storage.dir/namenode.cc.o"
  "CMakeFiles/autocomp_storage.dir/namenode.cc.o.d"
  "libautocomp_storage.a"
  "libautocomp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
