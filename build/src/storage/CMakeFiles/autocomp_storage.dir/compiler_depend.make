# Empty compiler generated dependencies file for autocomp_storage.
# This may be replaced when dependencies are built.
