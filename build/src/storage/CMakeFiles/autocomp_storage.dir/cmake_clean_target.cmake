file(REMOVE_RECURSE
  "libautocomp_storage.a"
)
