# Empty compiler generated dependencies file for autocomp_tuning.
# This may be replaced when dependencies are built.
