file(REMOVE_RECURSE
  "CMakeFiles/autocomp_tuning.dir/optimizer.cc.o"
  "CMakeFiles/autocomp_tuning.dir/optimizer.cc.o.d"
  "libautocomp_tuning.a"
  "libautocomp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
