file(REMOVE_RECURSE
  "libautocomp_tuning.a"
)
