# Empty dependencies file for bench_fig08_query_latency.
# This may be replaced when dependencies are built.
