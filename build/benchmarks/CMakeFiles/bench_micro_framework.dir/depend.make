# Empty dependencies file for bench_micro_framework.
# This may be replaced when dependencies are built.
