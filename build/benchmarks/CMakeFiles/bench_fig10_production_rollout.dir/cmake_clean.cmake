file(REMOVE_RECURSE
  "../bench/bench_fig10_production_rollout"
  "../bench/bench_fig10_production_rollout.pdb"
  "CMakeFiles/bench_fig10_production_rollout.dir/bench_fig10_production_rollout.cc.o"
  "CMakeFiles/bench_fig10_production_rollout.dir/bench_fig10_production_rollout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_production_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
