# Empty dependencies file for bench_fig10_production_rollout.
# This may be replaced when dependencies are built.
