# Empty dependencies file for bench_fig11_workload_impact.
# This may be replaced when dependencies are built.
