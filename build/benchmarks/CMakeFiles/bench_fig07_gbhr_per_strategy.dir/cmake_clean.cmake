file(REMOVE_RECURSE
  "../bench/bench_fig07_gbhr_per_strategy"
  "../bench/bench_fig07_gbhr_per_strategy.pdb"
  "CMakeFiles/bench_fig07_gbhr_per_strategy.dir/bench_fig07_gbhr_per_strategy.cc.o"
  "CMakeFiles/bench_fig07_gbhr_per_strategy.dir/bench_fig07_gbhr_per_strategy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gbhr_per_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
