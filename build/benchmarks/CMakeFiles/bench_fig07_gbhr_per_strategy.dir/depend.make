# Empty dependencies file for bench_fig07_gbhr_per_strategy.
# This may be replaced when dependencies are built.
