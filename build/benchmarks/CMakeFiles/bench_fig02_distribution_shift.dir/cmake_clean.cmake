file(REMOVE_RECURSE
  "../bench/bench_fig02_distribution_shift"
  "../bench/bench_fig02_distribution_shift.pdb"
  "CMakeFiles/bench_fig02_distribution_shift.dir/bench_fig02_distribution_shift.cc.o"
  "CMakeFiles/bench_fig02_distribution_shift.dir/bench_fig02_distribution_shift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_distribution_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
