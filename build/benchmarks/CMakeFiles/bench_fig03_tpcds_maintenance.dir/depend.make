# Empty dependencies file for bench_fig03_tpcds_maintenance.
# This may be replaced when dependencies are built.
