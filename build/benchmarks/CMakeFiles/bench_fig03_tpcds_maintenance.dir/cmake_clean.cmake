file(REMOVE_RECURSE
  "../bench/bench_fig03_tpcds_maintenance"
  "../bench/bench_fig03_tpcds_maintenance.pdb"
  "CMakeFiles/bench_fig03_tpcds_maintenance.dir/bench_fig03_tpcds_maintenance.cc.o"
  "CMakeFiles/bench_fig03_tpcds_maintenance.dir/bench_fig03_tpcds_maintenance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_tpcds_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
