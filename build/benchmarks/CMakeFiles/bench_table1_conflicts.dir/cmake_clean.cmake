file(REMOVE_RECURSE
  "../bench/bench_table1_conflicts"
  "../bench/bench_table1_conflicts.pdb"
  "CMakeFiles/bench_table1_conflicts.dir/bench_table1_conflicts.cc.o"
  "CMakeFiles/bench_table1_conflicts.dir/bench_table1_conflicts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
