# Empty dependencies file for bench_fig01_file_size_distribution.
# This may be replaced when dependencies are built.
