# Empty dependencies file for bench_fig06_file_count_over_time.
# This may be replaced when dependencies are built.
