# Empty dependencies file for bench_fig09_autotuning.
# This may be replaced when dependencies are built.
