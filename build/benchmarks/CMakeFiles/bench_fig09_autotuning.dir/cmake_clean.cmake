file(REMOVE_RECURSE
  "../bench/bench_fig09_autotuning"
  "../bench/bench_fig09_autotuning.pdb"
  "CMakeFiles/bench_fig09_autotuning.dir/bench_fig09_autotuning.cc.o"
  "CMakeFiles/bench_fig09_autotuning.dir/bench_fig09_autotuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_autotuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
