file(REMOVE_RECURSE
  "../bench/bench_estimator_accuracy"
  "../bench/bench_estimator_accuracy.pdb"
  "CMakeFiles/bench_estimator_accuracy.dir/bench_estimator_accuracy.cc.o"
  "CMakeFiles/bench_estimator_accuracy.dir/bench_estimator_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimator_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
