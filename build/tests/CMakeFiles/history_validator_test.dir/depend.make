# Empty dependencies file for history_validator_test.
# This may be replaced when dependencies are built.
