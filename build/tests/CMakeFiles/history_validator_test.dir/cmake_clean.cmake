file(REMOVE_RECURSE
  "CMakeFiles/history_validator_test.dir/history_validator_test.cc.o"
  "CMakeFiles/history_validator_test.dir/history_validator_test.cc.o.d"
  "history_validator_test"
  "history_validator_test.pdb"
  "history_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
