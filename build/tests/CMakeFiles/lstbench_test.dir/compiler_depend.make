# Empty compiler generated dependencies file for lstbench_test.
# This may be replaced when dependencies are built.
