file(REMOVE_RECURSE
  "CMakeFiles/lstbench_test.dir/lstbench_test.cc.o"
  "CMakeFiles/lstbench_test.dir/lstbench_test.cc.o.d"
  "lstbench_test"
  "lstbench_test.pdb"
  "lstbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
