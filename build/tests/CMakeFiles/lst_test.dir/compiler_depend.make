# Empty compiler generated dependencies file for lst_test.
# This may be replaced when dependencies are built.
