file(REMOVE_RECURSE
  "CMakeFiles/lst_test.dir/lst_test.cc.o"
  "CMakeFiles/lst_test.dir/lst_test.cc.o.d"
  "lst_test"
  "lst_test.pdb"
  "lst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
