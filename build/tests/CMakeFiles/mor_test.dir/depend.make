# Empty dependencies file for mor_test.
# This may be replaced when dependencies are built.
