file(REMOVE_RECURSE
  "CMakeFiles/mor_test.dir/mor_test.cc.o"
  "CMakeFiles/mor_test.dir/mor_test.cc.o.d"
  "mor_test"
  "mor_test.pdb"
  "mor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
