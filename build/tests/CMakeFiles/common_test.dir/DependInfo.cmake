
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/autocomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autocomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autocomp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/autocomp_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/autocomp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/autocomp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/lst/CMakeFiles/autocomp_lst.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/autocomp_format.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/autocomp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autocomp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
