# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/lst_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/mor_test[1]_include.cmake")
include("/root/repo/build/tests/pareto_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/history_validator_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/lstbench_test[1]_include.cmake")
