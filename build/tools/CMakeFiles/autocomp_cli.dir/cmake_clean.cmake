file(REMOVE_RECURSE
  "CMakeFiles/autocomp_cli.dir/autocomp_cli.cc.o"
  "CMakeFiles/autocomp_cli.dir/autocomp_cli.cc.o.d"
  "autocomp_cli"
  "autocomp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
