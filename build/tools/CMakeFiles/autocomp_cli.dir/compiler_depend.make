# Empty compiler generated dependencies file for autocomp_cli.
# This may be replaced when dependencies are built.
