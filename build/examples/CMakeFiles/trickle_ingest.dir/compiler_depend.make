# Empty compiler generated dependencies file for trickle_ingest.
# This may be replaced when dependencies are built.
