file(REMOVE_RECURSE
  "CMakeFiles/trickle_ingest.dir/trickle_ingest.cpp.o"
  "CMakeFiles/trickle_ingest.dir/trickle_ingest.cpp.o.d"
  "trickle_ingest"
  "trickle_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trickle_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
