# Empty compiler generated dependencies file for pareto_frontier.
# This may be replaced when dependencies are built.
