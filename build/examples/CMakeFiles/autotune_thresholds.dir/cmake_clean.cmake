file(REMOVE_RECURSE
  "CMakeFiles/autotune_thresholds.dir/autotune_thresholds.cpp.o"
  "CMakeFiles/autotune_thresholds.dir/autotune_thresholds.cpp.o.d"
  "autotune_thresholds"
  "autotune_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
