# Empty compiler generated dependencies file for autotune_thresholds.
# This may be replaced when dependencies are built.
