/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the AutoComp library.
///
/// Builds a simulated deployment, fragments a table with untuned writes,
/// runs one AutoComp OODA cycle, and shows the before/after state:
///
///   ./quickstart
///
/// Covers: catalog/table creation, write execution, candidate generation,
/// traits, MOOP ranking, scheduling, and the feedback loop.

#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "common/units.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/tpch.h"

using namespace autocomp;

int main() {
  Logger::set_threshold(LogLevel::kInfo);

  // 1. A simulated deployment: HDFS-like storage, an OpenHouse-like
  //    catalog + control plane, a query cluster and a small dedicated
  //    compaction cluster.
  sim::SimEnvironment env;

  // 2. Create a TPC-H-like database and load it through an *untuned*
  //    writer — this is what end-user Spark/Trino/Flink jobs do, and it
  //    sprays small files (paper §2, Figure 1).
  Status setup = workload::SetupTpchDatabase(
      &env.catalog(), &env.query_engine(), "demo",
      /*total_logical_bytes=*/8 * kGiB, engine::UntunedUserJobProfile(),
      /*at=*/0);
  if (!setup.ok()) {
    std::cerr << "setup failed: " << setup << "\n";
    return 1;
  }

  auto table = env.catalog().GetTable("demo.lineitem");
  auto before = table->Metadata();
  std::printf("before compaction: %lld live files, %s\n",
              static_cast<long long>((*before)->live_file_count()),
              FormatBytes((*before)->live_bytes()).c_str());

  // A read query pays for every small file it opens.
  auto read_before =
      env.query_engine().ExecuteRead("demo.lineitem", std::nullopt, kMinute);
  std::printf("scan before: %.1fs over %lld files\n",
              read_before->total_seconds,
              static_cast<long long>(read_before->files_scanned));

  // 3. Configure AutoComp: hybrid scope (partition work units for
  //    partitioned tables), MOOP ranking weighted 0.7 on file-count
  //    reduction / 0.3 on compute cost, top-50 selection, hourly trigger.
  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kHybrid;
  preset.k = 50;
  auto service = sim::MakeMoopService(&env, preset);

  // 4. Run one OODA cycle (observe -> orient -> decide -> act).
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  if (!report.ok()) {
    std::cerr << "pipeline failed: " << report.status() << "\n";
    return 1;
  }
  std::printf(
      "pipeline: %lld candidates, %lld selected, %lld committed, "
      "%lld conflicts, %lld files removed, %.1f GBHr\n",
      static_cast<long long>(report->candidates_generated),
      static_cast<long long>(report->selected.size()),
      static_cast<long long>(report->committed_count()),
      static_cast<long long>(report->conflict_count()),
      static_cast<long long>(report->files_reduced()),
      report->actual_gb_hours());

  // 5. After: fewer, bigger files; faster scans.
  auto after = table->Metadata();
  std::printf("after compaction:  %lld live files, %s\n",
              static_cast<long long>((*after)->live_file_count()),
              FormatBytes((*after)->live_bytes()).c_str());
  auto read_after = env.query_engine().ExecuteRead("demo.lineitem",
                                                   std::nullopt,
                                                   env.clock().Now());
  std::printf("scan after:  %.1fs over %lld files\n",
              read_after->total_seconds,
              static_cast<long long>(read_after->files_scanned));

  // 6. The feedback loop compares the decide phase's estimates with what
  //    actually happened (paper §7's estimator-accuracy discussion).
  for (size_t i = 0; i < report->feedback.size() && i < 3; ++i) {
    const core::FeedbackEntry& fb = report->feedback[i];
    std::printf("feedback %s: est ΔF=%.0f actual ΔF=%.0f, est %.2f GBHr "
                "actual %.2f GBHr\n",
                fb.candidate_id.c_str(), fb.estimated_file_reduction,
                fb.actual_file_reduction, fb.estimated_gb_hours,
                fb.actual_gb_hours);
  }
  return 0;
}
