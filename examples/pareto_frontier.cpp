/// \file pareto_frontier.cpp
/// \brief Example: Pareto-frontier analysis of compaction trade-offs
/// (paper §8, "Navigating Multi-Objective Trade-offs").
///
/// Instead of collapsing (file-count reduction, compute cost) into one
/// weighted score, extract the set of non-dominated candidates and show
/// which frontier point each weighting w1 would pick — the broader
/// perspective the paper proposes for future compaction systems.
///
///   ./pareto_frontier

#include <cstdio>

#include "common/logging.h"
#include "core/observe.h"
#include "core/pareto.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "workload/tpch.h"

using namespace autocomp;

int main() {
  Logger::set_threshold(LogLevel::kInfo);
  sim::SimEnvironment env;

  // A handful of databases with different fragmentation levels, so the
  // candidate pool spans the benefit/cost plane.
  const struct {
    const char* db;
    int64_t bytes;
  } tenants[] = {
      {"heavy", 16 * kGiB}, {"medium", 6 * kGiB}, {"light", 1 * kGiB}};
  for (const auto& t : tenants) {
    Status setup = workload::SetupTpchDatabase(
        &env.catalog(), &env.query_engine(), t.db, t.bytes,
        engine::UntunedUserJobProfile(), 0);
    if (!setup.ok()) {
      std::fprintf(stderr, "setup: %s\n", setup.ToString().c_str());
      return 1;
    }
  }

  // Observe + orient the whole fleet.
  core::TableScopeGenerator generator;
  core::StatsCollector collector(&env.catalog(), &env.control_plane(),
                                 &env.clock());
  auto pool = generator.Generate(&env.catalog());
  auto observed = collector.CollectAll(*pool);
  const engine::ClusterOptions& copts = env.compaction_cluster().options();
  auto traited = core::ComputeTraits(
      *observed,
      {std::make_shared<core::FileCountReductionTrait>(),
       std::make_shared<core::ComputeCostTrait>(
           copts.executor_memory_gb * copts.executors,
           copts.rewrite_bytes_per_hour)});

  // The frontier: every point here is a defensible trade-off.
  const auto points = core::ComputeParetoFrontier(
      traited, "file_count_reduction", "compute_cost_gbhr");
  std::printf("%-20s %12s %12s %10s\n", "candidate", "ΔF (files)",
              "cost (GBHr)", "frontier");
  for (const core::ParetoPoint& p : points) {
    std::printf("%-20s %12.0f %12.2f %10s\n",
                traited[p.index].observed.candidate.id().c_str(), p.benefit,
                p.cost, p.on_frontier ? "*" : "");
  }

  // The §8 point: every fixed weighting collapses to ONE frontier point,
  // and nearby weights can jump to very different trade-offs.
  std::printf("\nweight sweep (w1 = benefit weight, cost weight = 1-w1):\n");
  std::printf("%6s  %-20s %12s %12s\n", "w1", "winner", "ΔF", "GBHr");
  for (const core::WeightSweepRow& row : core::SweepWeights(
           traited, "file_count_reduction", "compute_cost_gbhr", 11)) {
    std::printf("%6.1f  %-20s %12.0f %12.2f\n", row.benefit_weight,
                row.top_candidate_id.c_str(), row.benefit, row.cost);
  }

  // A frontier-based selection keeps the whole menu instead.
  core::MoopRanker ranker = core::MoopRanker::PaperDefault();
  core::ParetoFrontierSelector selector("file_count_reduction",
                                        "compute_cost_gbhr");
  const auto menu = selector.Select(ranker.Rank(traited));
  std::printf("\nParetoFrontierSelector keeps %zu of %zu candidates — the\n"
              "non-dominated menu an operator (or a downstream policy)\n"
              "can choose from.\n",
              menu.size(), traited.size());
  return 0;
}
