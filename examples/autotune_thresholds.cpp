/// \file autotune_thresholds.cpp
/// \brief Example: auto-tuning a compaction trigger threshold (paper
/// §6.3) with the CFO optimizer.
///
/// Wraps a small workload (fragmenting writes + scans + an
/// optimize-after-write trigger) into an objective function and lets the
/// tuner find the small-file-count threshold minimizing end-to-end time.
///
///   ./autotune_thresholds

#include <cstdio>

#include "common/logging.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "core/triggers.h"
#include "sim/environment.h"
#include "tuning/optimizer.h"
#include "workload/tpch.h"

using namespace autocomp;

namespace {

/// One experiment: sessions of (fragmenting write -> hook -> scans) on a
/// fresh environment. Returns total simulated duration in seconds.
Result<double> RunOnce(double threshold) {
  sim::SimEnvironment env;
  AUTOCOMP_RETURN_NOT_OK(workload::SetupTpchDatabase(
      &env.catalog(), &env.query_engine(), "db", 8 * kGiB,
      engine::UntunedUserJobProfile(), 0));

  core::OptimizeAfterWriteHook::ImmediateStages stages{
      std::make_shared<core::StatsCollector>(&env.catalog(),
                                             &env.control_plane(),
                                             &env.clock()),
      {std::make_shared<core::FileCountReductionTrait>()},
      core::ThresholdPolicy("file_count_reduction", threshold),
      std::make_shared<core::SerialScheduler>(&env.compaction_runner(),
                                              &env.control_plane())};
  core::OptimizeAfterWriteHook hook(std::move(stages));

  Rng rng(3);
  const SimTime start = env.clock().Now();
  for (int session = 0; session < 3; ++session) {
    engine::WriteSpec write;
    write.table = "db.lineitem";
    write.kind = engine::WriteKind::kAppend;
    write.logical_bytes = 512 * kMiB;
    write.profile = engine::UntunedUserJobProfile();
    write.partitions = workload::LineitemMonthPartitions();
    auto wrote = env.query_engine().ExecuteWrite(write, env.clock().Now());
    AUTOCOMP_RETURN_NOT_OK(wrote.status());
    env.clock().Advance(static_cast<SimTime>(wrote->total_seconds) + 1);

    auto compacted = hook.OnWrite("db.lineitem", std::nullopt,
                                  env.clock().Now());
    AUTOCOMP_RETURN_NOT_OK(compacted.status());
    if (compacted->has_value() && (*compacted)->result.committed) {
      env.clock().AdvanceTo(
          std::max(env.clock().Now(), (*compacted)->result.end_time));
    }

    for (int q = 0; q < 40; ++q) {
      auto read = env.query_engine().ExecuteRead("db.lineitem", std::nullopt,
                                                 env.clock().Now());
      AUTOCOMP_RETURN_NOT_OK(read.status());
      env.clock().Advance(static_cast<SimTime>(read->total_seconds) + 1);
    }
  }
  return static_cast<double>(env.clock().Now() - start);
}

}  // namespace

int main() {
  Logger::set_threshold(LogLevel::kInfo);
  std::printf("tuning the small-file-count trigger threshold...\n");

  auto baseline = RunOnce(1e18);  // threshold so high it never triggers
  if (!baseline.ok()) return 1;
  std::printf("no-compaction baseline: %.0f s\n\n", *baseline);

  tuning::CfoOptimizer optimizer(
      {{"small_file_count_threshold", 10, 50000, /*log_scale=*/true}}, 9);
  tuning::Tuner tuner(&optimizer, [](const tuning::ParamVector& p) {
    return RunOnce(p[0]);
  });
  auto trials = tuner.Run(10);
  if (!trials.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 trials.status().ToString().c_str());
    return 1;
  }
  std::printf("%5s %12s %12s\n", "iter", "threshold", "duration(s)");
  for (size_t i = 0; i < trials->size(); ++i) {
    std::printf("%5zu %12.1f %12.0f\n", i + 1, (*trials)[i].params[0],
                (*trials)[i].objective);
  }
  auto best = tuner.Best();
  std::printf("\nbest threshold %.1f -> %.0f s (%.2fx of baseline)\n",
              best->params[0], best->objective, best->objective / *baseline);
  return 0;
}
