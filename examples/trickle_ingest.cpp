/// \file trickle_ingest.cpp
/// \brief Example: a managed trickle-ingestion pipeline with an
/// optimize-after-write hook (paper §2 + §5).
///
/// Raw events land every five minutes as small checkpoint files. An
/// optimize-after-write hook in *notify* mode records which partitions
/// changed; a decoupled AutoComp service periodically drains those
/// notifications and compacts just the affected candidates — the
/// resource-controlled variant of post-write compaction.
///
///   ./trickle_ingest

#include <cstdio>

#include "common/logging.h"
#include "core/observe.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "core/triggers.h"
#include "sim/environment.h"
#include "workload/trickle.h"

using namespace autocomp;

int main() {
  Logger::set_threshold(LogLevel::kInfo);
  sim::SimEnvironment env;

  workload::TrickleOptions options;
  options.num_topics = 2;
  options.duration = 4 * kHour;
  options.bytes_per_flush = 128 * kMiB;
  workload::TrickleIngestion trickle(options);
  if (!trickle.Setup(&env.catalog(), 0).ok()) return 1;

  // A notify-mode hook: the engine's write path pings it after every
  // commit; candidates queue up instead of compacting immediately.
  core::OptimizeAfterWriteHook hook;

  // The decoupled service drains the hook's queue on its own schedule.
  core::AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<core::TableScopeGenerator>();  // unused
  stages.collector = std::make_shared<core::StatsCollector>(
      &env.catalog(), &env.control_plane(), &env.clock());
  stages.traits = {std::make_shared<core::FileCountReductionTrait>()};
  stages.ranker =
      std::make_shared<core::SingleTraitRanker>("file_count_reduction");
  stages.selector = std::make_shared<core::FixedKSelector>(100);
  stages.scheduler = std::make_shared<core::SerialScheduler>(
      &env.compaction_runner(), &env.control_plane());
  core::AutoCompPipeline pipeline(std::move(stages), &env.catalog(),
                                  &env.clock());

  SimTime next_service_run = kHour;
  for (const workload::QueryEvent& e : trickle.GenerateEvents()) {
    env.clock().AdvanceTo(e.time);
    auto write = env.query_engine().ExecuteWrite(e.write, e.time);
    if (!write.ok()) {
      std::fprintf(stderr, "write failed: %s\n",
                   write.status().ToString().c_str());
      return 1;
    }
    // Push notification: this partition just changed.
    (void)hook.OnWrite(e.write.table, e.write.partitions.front(), e.time);

    if (e.time >= next_service_run) {
      // Pull side: compact exactly what changed since the last run.
      std::vector<core::Candidate> changed = hook.DrainNotifications();
      auto report = pipeline.RunForCandidates(changed);
      if (!report.ok()) return 1;
      std::printf(
          "[t=%s] service run: %zu notified candidates, %lld compacted, "
          "%lld files removed, %.2f GBHr\n",
          FormatDuration(e.time).c_str(), changed.size(),
          static_cast<long long>(report->committed_count()),
          static_cast<long long>(report->files_reduced()),
          report->actual_gb_hours());
      next_service_run += kHour;
    }
  }

  for (const std::string& table : trickle.TableNames()) {
    auto meta = env.catalog().LoadTable(table);
    std::printf("%s: %lld live files, %s\n", table.c_str(),
                static_cast<long long>((*meta)->live_file_count()),
                FormatBytes((*meta)->live_bytes()).c_str());
  }
  return 0;
}
