/// \file multi_tenant_budget.cpp
/// \brief Example: budget-constrained, quota-aware compaction across
/// tenants — the paper's §7 production configuration.
///
/// Three tenant databases share a compaction budget. Tenant quotas feed
/// the production weighting w1 = 0.5 × (1 + UsedQuota/TotalQuota): tables
/// in databases close to their namespace quota get their file-count
/// reduction weighted up, so the budget flows to the tenants about to
/// breach.
///
///   ./multi_tenant_budget

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "workload/tpch.h"

using namespace autocomp;

namespace {

/// A ranker applying the §7 per-candidate quota-aware weights: the
/// benefit weight grows with the candidate's database quota utilization.
/// Demonstrates NFR1: a deployment-specific Ranker slots into the
/// pipeline unchanged.
class QuotaAwareRanker final : public core::Ranker {
 public:
  std::string name() const override { return "quota-aware-moop"; }

  std::vector<core::ScoredCandidate> Rank(
      std::vector<core::TraitedCandidate> candidates) const override {
    // Normalize traits across the pool first (as MoopRanker does), then
    // apply per-candidate weights.
    double min_reduction = 1e300, max_reduction = -1e300;
    double min_cost = 1e300, max_cost = -1e300;
    for (const auto& c : candidates) {
      const double r = c.traits.at("file_count_reduction");
      const double k = c.traits.at("compute_cost_gbhr");
      min_reduction = std::min(min_reduction, r);
      max_reduction = std::max(max_reduction, r);
      min_cost = std::min(min_cost, k);
      max_cost = std::max(max_cost, k);
    }
    std::vector<core::ScoredCandidate> out;
    for (auto& c : candidates) {
      const double r_span = max_reduction - min_reduction;
      const double c_span = max_cost - min_cost;
      const double r_norm =
          r_span > 0
              ? (c.traits.at("file_count_reduction") - min_reduction) / r_span
              : 0;
      const double c_norm =
          c_span > 0 ? (c.traits.at("compute_cost_gbhr") - min_cost) / c_span
                     : 0;
      const double w1 =
          core::QuotaAwareBenefitWeight(c.observed.stats.quota_utilization);
      core::ScoredCandidate sc;
      sc.score = w1 * r_norm - (1.0 - w1) * c_norm;
      sc.traited = std::move(c);
      out.push_back(std::move(sc));
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.candidate().id() < b.candidate().id();
    });
    return out;
  }
};

}  // namespace

int main() {
  Logger::set_threshold(LogLevel::kInfo);
  sim::SimEnvironment env;

  // Three tenants with very different quota headroom. Tenant "crowded" is
  // at ~90% of its namespace quota; "roomy" barely uses its allocation.
  struct Tenant {
    const char* db;
    int64_t quota;
    int64_t data_bytes;
  };
  const Tenant tenants[] = {
      {"crowded", 7'000, 12 * kGiB},
      {"normal", 13'000, 12 * kGiB},
      {"roomy", 80'000, 12 * kGiB},
  };
  for (const Tenant& t : tenants) {
    if (!env.catalog().CreateDatabase(t.db, t.quota).ok()) return 1;
    Status setup = workload::SetupTpchDatabase(
        &env.catalog(), &env.query_engine(), t.db, t.data_bytes,
        engine::UntunedUserJobProfile(), 0);
    if (!setup.ok()) {
      std::fprintf(stderr, "setup %s: %s\n", t.db, setup.ToString().c_str());
      return 1;
    }
  }
  for (const Tenant& t : tenants) {
    const storage::QuotaStatus q = env.catalog().DatabaseQuota(t.db);
    std::printf("%-8s quota %lld/%lld (%.0f%%) -> w1=%.2f\n", t.db,
                static_cast<long long>(q.used_objects),
                static_cast<long long>(q.total_objects),
                100 * q.utilization(),
                core::QuotaAwareBenefitWeight(q.utilization()));
  }

  // Budgeted pipeline with the quota-aware ranker.
  const engine::ClusterOptions& copts = env.compaction_cluster().options();
  core::AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<core::TableScopeGenerator>();
  stages.collector = std::make_shared<core::StatsCollector>(
      &env.catalog(), &env.control_plane(), &env.clock());
  stages.traits = {std::make_shared<core::FileCountReductionTrait>(),
                   std::make_shared<core::ComputeCostTrait>(
                       copts.executor_memory_gb * copts.executors,
                       copts.rewrite_bytes_per_hour)};
  stages.ranker = std::make_shared<QuotaAwareRanker>();
  stages.selector = std::make_shared<core::BudgetedSelector>(
      /*budget GBHr=*/150.0, "compute_cost_gbhr");
  stages.scheduler = std::make_shared<core::TableParallelScheduler>(
      &env.compaction_runner(), &env.control_plane());
  core::AutoCompPipeline pipeline(std::move(stages), &env.catalog(),
                                  &env.clock());

  env.clock().AdvanceTo(kHour);
  auto report = pipeline.RunOnce();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbudget run: %zu selected (dynamic k), %lld committed, "
              "%.1f GBHr spent\n",
              report->selected.size(),
              static_cast<long long>(report->committed_count()),
              report->actual_gb_hours());
  std::printf("%-40s %8s %8s\n", "selected candidate", "score", "estGBHr");
  for (const core::ScoredCandidate& sc : report->selected) {
    std::printf("%-40s %8.3f %8.2f\n", sc.candidate().id().c_str(), sc.score,
                sc.traited.traits.at("compute_cost_gbhr"));
  }
  // The crowded tenant's tables should dominate the front of the list.
  int crowded_in_top5 = 0;
  for (size_t i = 0; i < report->selected.size() && i < 5; ++i) {
    if (report->selected[i].candidate().table.rfind("crowded.", 0) == 0) {
      ++crowded_in_top5;
    }
  }
  std::printf("\ncrowded-tenant tables in top-5: %d (quota pressure pulls "
              "the budget toward the tenant about to breach)\n",
              crowded_in_top5);
  return 0;
}
