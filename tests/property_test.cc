// Property-based (parameterized) suites over the framework's invariants:
// normalization bounds, selector budget respect, determinism, estimator
// soundness, and LST live-set conservation under random operation mixes.

#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/ranking.h"
#include "core/traits.h"
#include "lst/history_validator.h"
#include "lst/metadata_json.h"
#include "lst/table.h"
#include "lst/transaction.h"
#include "storage/filesystem.h"

namespace autocomp {
namespace {

// ---------------------------------------------------------- MOOP ranking

core::TraitedCandidate RandomTraited(Rng* rng, int i) {
  core::TraitedCandidate tc;
  tc.observed.candidate.table = "db.t" + std::to_string(i);
  tc.traits["file_count_reduction"] = rng->Uniform(0, 10000);
  tc.traits["compute_cost_gbhr"] = rng->Uniform(0, 500);
  return tc;
}

class MoopPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MoopPropertyTest, ScoresBoundedAndOrderDeterministic) {
  Rng rng(GetParam());
  std::vector<core::TraitedCandidate> pool;
  const int n = static_cast<int>(rng.UniformInt(1, 300));
  for (int i = 0; i < n; ++i) pool.push_back(RandomTraited(&rng, i));

  const core::MoopRanker ranker = core::MoopRanker::PaperDefault();
  const auto ranked = ranker.Rank(pool);
  ASSERT_EQ(ranked.size(), pool.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    // Weighted normalized scores live in [-w_cost, +w_benefit].
    EXPECT_GE(ranked[i].score, -0.3 - 1e-9);
    EXPECT_LE(ranked[i].score, 0.7 + 1e-9);
    if (i > 0) EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  // Re-ranking the same pool yields the same order (NFR2).
  const auto again = ranker.Rank(pool);
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].candidate().id(), again[i].candidate().id());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoopPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

// ------------------------------------------------------------- Selectors

class SelectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectorPropertyTest, BudgetNeverExceededAndPriorityRespected) {
  Rng rng(GetParam());
  std::vector<core::TraitedCandidate> pool;
  const int n = static_cast<int>(rng.UniformInt(1, 200));
  for (int i = 0; i < n; ++i) pool.push_back(RandomTraited(&rng, i));
  const auto ranked = core::MoopRanker::PaperDefault().Rank(pool);

  const double budget = rng.Uniform(10, 2000);
  const auto selected =
      core::BudgetedSelector(budget, "compute_cost_gbhr").Select(ranked);

  double total = 0;
  std::set<std::string> chosen;
  for (const auto& sc : selected) {
    total += sc.traited.traits.at("compute_cost_gbhr");
    chosen.insert(sc.candidate().id());
  }
  EXPECT_LE(total, budget + 1e-6);

  // Priority property of the greedy fill: any skipped candidate ranked
  // above a chosen one must not have fit at its turn. Equivalent check:
  // walking the ranking and re-simulating the fill reproduces the
  // selection exactly.
  double remaining = budget;
  std::set<std::string> resim;
  for (const auto& sc : ranked) {
    const double cost = sc.traited.traits.at("compute_cost_gbhr");
    if (cost <= remaining) {
      resim.insert(sc.candidate().id());
      remaining -= cost;
    }
  }
  EXPECT_EQ(chosen, resim);

  // Knapsack under the same budget is also feasible and at least as good.
  const auto optimal =
      core::KnapsackSelector(budget, "compute_cost_gbhr", 800).Select(ranked);
  double optimal_cost = 0, optimal_score = 0, greedy_score = 0;
  for (const auto& sc : optimal) {
    optimal_cost += sc.traited.traits.at("compute_cost_gbhr");
    optimal_score += sc.score;
  }
  for (const auto& sc : selected) greedy_score += sc.score;
  EXPECT_LE(optimal_cost, budget + 1e-6);
  // Scores may be negative; compare with a tolerance that absorbs the
  // knapsack's cost discretization.
  EXPECT_GE(optimal_score, greedy_score - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

// ------------------------------------------------------------ Estimators

class EstimatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimatorPropertyTest, PartitionAwareNeverExceedsNaive) {
  Rng rng(GetParam());
  core::ObservedCandidate oc;
  oc.stats.target_file_size_bytes = 1000;
  const int partitions = static_cast<int>(rng.UniformInt(1, 20));
  for (int p = 0; p < partitions; ++p) {
    const std::string key = "p=" + std::to_string(p);
    const int files = static_cast<int>(rng.UniformInt(0, 50));
    for (int f = 0; f < files; ++f) {
      const int64_t size = rng.UniformInt(1, 2000);
      oc.stats.file_sizes.push_back(size);
      oc.stats.file_sizes_by_partition[key].push_back(size);
      ++oc.stats.file_count;
      oc.stats.total_bytes += size;
    }
  }
  const double naive = core::FileCountReductionTrait().Compute(oc);
  const double aware =
      core::PartitionAwareFileCountReductionTrait().Compute(oc);
  EXPECT_LE(aware, naive);  // outputs always cost at least something
  EXPECT_GE(aware, 0);
  const double entropy = core::FileEntropyTrait().Compute(oc);
  EXPECT_GE(entropy, 0);
  EXPECT_LE(entropy, 1.0);
  const double total_entropy = core::TotalFileEntropyTrait().Compute(oc);
  EXPECT_GE(total_entropy, entropy - 1e-12);  // N * mean >= mean for N>=1
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorPropertyTest,
                         ::testing::Range(uint64_t{200}, uint64_t{225}));

// --------------------------------------------- LST live-set conservation

class LstPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LstPropertyTest, RandomOperationMixConservesLiveSet) {
  // Apply a random mix of appends / overwrites / rewrites / deletes and
  // track the expected live set independently; the table must agree after
  // every commit, and snapshot history must replay to the same set.
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog catalog(&clock, &dfs);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable(
      "db", "t", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
      lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
  ASSERT_TRUE(table.ok());

  Rng rng(GetParam());
  std::set<std::string> expected;  // live paths
  int64_t next_file = 0;
  auto make_file = [&](const std::string& partition) {
    lst::DataFile f;
    f.path = "/data/db/t/" + partition + "/f" + std::to_string(next_file++);
    f.partition = partition;
    f.file_size_bytes = rng.UniformInt(1, 1000);
    f.record_count = 1;
    return f;
  };
  const std::vector<std::string> partitions = {"m=2024-01", "m=2024-02",
                                               "m=2024-03"};

  for (int step = 0; step < 60; ++step) {
    clock.Advance(kMinute);
    const double pick = rng.NextDouble();
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    if (pick < 0.5 || expected.empty()) {
      // Append 1-5 files into a random partition.
      std::vector<lst::DataFile> files;
      const std::string& partition =
          partitions[static_cast<size_t>(rng.UniformInt(0, 2))];
      const int n = static_cast<int>(rng.UniformInt(1, 5));
      for (int i = 0; i < n; ++i) files.push_back(make_file(partition));
      ASSERT_TRUE(txn->Append(files).ok());
      auto committed = txn->Commit();
      ASSERT_TRUE(committed.ok());
      for (const auto& f : files) expected.insert(f.path);
    } else {
      // Pick 1-3 random live paths to replace/delete.
      std::vector<std::string> victims;
      const int want = static_cast<int>(rng.UniformInt(1, 3));
      for (const std::string& path : expected) {
        if (static_cast<int>(victims.size()) >= want) break;
        if (rng.Bernoulli(0.3)) victims.push_back(path);
      }
      if (victims.empty()) victims.push_back(*expected.begin());
      if (pick < 0.7) {
        // Rewrite into one merged file per victim partition group (use
        // the first victim's partition for simplicity: fetch from meta).
        auto meta = table->Metadata();
        std::string partition;
        for (const lst::DataFile& f : (*meta)->LiveFiles()) {
          if (f.path == victims.front()) partition = f.partition;
        }
        // Only rewrite victims within one partition to mirror real
        // compaction.
        std::vector<std::string> same_partition;
        for (const lst::DataFile& f : (*meta)->LiveFiles()) {
          for (const std::string& v : victims) {
            if (f.path == v && f.partition == partition) {
              same_partition.push_back(v);
            }
          }
        }
        const lst::DataFile merged = make_file(partition);
        ASSERT_TRUE(txn->RewriteFiles(same_partition, {merged}).ok());
        auto committed = txn->Commit();
        ASSERT_TRUE(committed.ok()) << committed.status();
        for (const std::string& v : same_partition) expected.erase(v);
        expected.insert(merged.path);
      } else {
        ASSERT_TRUE(txn->DeleteFiles(victims).ok());
        auto committed = txn->Commit();
        ASSERT_TRUE(committed.ok());
        for (const std::string& v : victims) expected.erase(v);
      }
    }
    // Invariant: table live set == tracked set.
    auto meta = table->Metadata();
    std::set<std::string> actual;
    for (const lst::DataFile& f : (*meta)->LiveFiles()) {
      actual.insert(f.path);
    }
    ASSERT_EQ(actual, expected) << "step " << step;
    // Snapshot summaries are internally consistent.
    const lst::Snapshot* snap = (*meta)->current_snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->live_file_count(),
              static_cast<int64_t>(expected.size()));
  }
  // The whole history replays consistently, and survives a JSON
  // round-trip unchanged.
  auto final_meta = table->Metadata();
  ASSERT_TRUE(lst::CheckHistory(**final_meta).ok())
      << lst::CheckHistory(**final_meta);
  auto restored =
      lst::TableMetadataFromJson(lst::TableMetadataToJson(**final_meta));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(lst::TableMetadataToJson(**restored),
            lst::TableMetadataToJson(**final_meta));
  EXPECT_TRUE(lst::CheckHistory(**restored).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LstPropertyTest,
                         ::testing::Range(uint64_t{300}, uint64_t{315}));

// ----------------------------------------------- Quota conservation

class QuotaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuotaPropertyTest, UsageTracksCreatesAndDeletes) {
  SimulatedClock clock(0);
  storage::NameNode nn(&clock);
  nn.SetNamespaceQuota("/data/db", 1'000'000);
  Rng rng(GetParam());
  std::set<std::string> files;
  int64_t next = 0;
  for (int step = 0; step < 200; ++step) {
    if (files.empty() || rng.Bernoulli(0.65)) {
      const std::string path = "/data/db/t/f" + std::to_string(next++);
      ASSERT_TRUE(nn.CreateFile(path, 1, 1).ok());
      files.insert(path);
    } else {
      const std::string path = *files.begin();
      ASSERT_TRUE(nn.DeleteFile(path).ok());
      files.erase(path);
    }
    // used = files + the /data/db/t directory (once it exists).
    const storage::QuotaStatus q = nn.GetQuota("/data/db");
    EXPECT_EQ(q.used_objects, static_cast<int64_t>(files.size()) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotaPropertyTest,
                         ::testing::Range(uint64_t{400}, uint64_t{410}));

}  // namespace
}  // namespace autocomp
