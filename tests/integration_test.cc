// End-to-end integration tests: full workload + AutoComp scenarios
// exercising the whole stack (storage -> LST -> catalog -> engine ->
// OODA pipeline -> metrics), including the headline paper claims.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/cab.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace autocomp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static workload::CabOptions SmallCab() {
    workload::CabOptions options;
    options.num_databases = 4;
    options.duration = 3 * kHour;
    return options;
  }

  static void SetupCab(sim::SimEnvironment* env,
                       const workload::CabWorkload& cab) {
    for (const std::string& db : cab.DatabaseNames()) {
      ASSERT_TRUE(workload::SetupTpchDatabase(
                      &env->catalog(), &env->query_engine(), db, 4 * kGiB,
                      engine::UntunedUserJobProfile(), 0)
                      .ok());
    }
  }
};

TEST_F(IntegrationTest, NoCompactionFileCountGrows) {
  sim::SimEnvironment env;
  workload::CabWorkload cab(SmallCab());
  SetupCab(&env, cab);
  const int64_t initial = env.TotalFileCount();
  sim::MetricsRecorder metrics;
  sim::EventDriver driver(&env, &metrics);
  ASSERT_TRUE(driver.Run(cab.GenerateEvents(), 3 * kHour).ok());
  EXPECT_GT(env.TotalFileCount(), initial);
}

TEST_F(IntegrationTest, CompactionReducesFilesAndStorageAgrees) {
  sim::SimEnvironment env;
  workload::CabWorkload cab(SmallCab());
  SetupCab(&env, cab);
  const int64_t initial = env.TotalFileCount();

  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kHybrid;
  preset.k = 200;
  auto service = sim::MakeMoopService(&env, preset);
  sim::MetricsRecorder metrics;
  sim::EventDriver driver(&env, &metrics);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run(cab.GenerateEvents(), 3 * kHour).ok());
  EXPECT_LT(env.TotalFileCount(), initial);

  // Consistency: every live file of every table exists in storage, and
  // the storage file count is at least the sum of live files (orphans of
  // in-flight snapshots may remain until retention).
  int64_t live_total = 0;
  for (const std::string& name : env.catalog().ListAllTables()) {
    auto meta = env.catalog().LoadTable(name);
    ASSERT_TRUE(meta.ok());
    for (const lst::DataFile& f : (*meta)->LiveFiles()) {
      EXPECT_TRUE(env.dfs().Exists(f.path)) << f.path;
      ++live_total;
    }
  }
  EXPECT_GE(env.TotalFileCount(), live_total);
}

TEST_F(IntegrationTest, CompactionImprovesReadLatency) {
  sim::SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 8 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  auto before = env.query_engine().ExecuteRead("db.lineitem", std::nullopt,
                                               kMinute);
  ASSERT_TRUE(before.ok());

  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kTable;
  preset.k = 10;
  auto service = sim::MakeMoopService(&env, preset);
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->committed_count(), 0);

  auto after = env.query_engine().ExecuteRead("db.lineitem", std::nullopt,
                                              env.clock().Now());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->files_scanned, before->files_scanned / 4);
  EXPECT_LT(after->total_seconds, before->total_seconds);
}

TEST_F(IntegrationTest, FullRunIsDeterministic) {
  // NFR2 at system level: two identical runs produce identical decisions
  // and identical final state.
  auto run_once = [&]() {
    sim::SimEnvironment env;
    workload::CabWorkload cab(SmallCab());
    SetupCab(&env, cab);
    sim::StrategyPreset preset;
    preset.scope = sim::ScopeStrategy::kHybrid;
    preset.k = 50;
    auto service = sim::MakeMoopService(&env, preset);
    sim::MetricsRecorder metrics;
    sim::EventDriver driver(&env, &metrics);
    driver.AttachService(service.get());
    EXPECT_TRUE(driver.Run(cab.GenerateEvents(), 3 * kHour).ok());
    std::vector<std::string> decisions;
    for (const core::PipelineRunReport& report : service->history()) {
      for (const core::ScoredCandidate& sc : report.selected) {
        decisions.push_back(sc.candidate().id());
      }
    }
    return std::make_pair(env.TotalFileCount(), decisions);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_F(IntegrationTest, DeferredModeProducesClusterConflictsUnderStrictMode) {
  // The Table 1 mechanism: long table-scope rewrites overlapping user
  // overwrites lose their commit race.
  sim::SimEnvironment env;
  workload::CabOptions options = SmallCab();
  options.etl_writes_per_hour = 8;
  options.overwrite_fraction = 0.8;
  workload::CabWorkload cab(options);
  SetupCab(&env, cab);

  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kTable;
  preset.k = 4;
  preset.deferred_act = true;
  auto service = sim::MakeMoopService(&env, preset);
  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.deferred_compaction = true;
  sim::EventDriver driver(&env, &metrics, driver_options);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run(cab.GenerateEvents(), 3 * kHour).ok());
  // Some rewrites must have committed; with this much overwrite traffic,
  // typically some conflict too — assert on commits and on accounting
  // consistency (committed + conflicts == finalized attempts).
  const int64_t commits = metrics.TotalCount("compaction_commits");
  const int64_t conflicts = metrics.TotalCount("cluster_conflicts");
  EXPECT_GT(commits, 0);
  EXPECT_EQ(commits, env.compaction_runner().total_committed());
  EXPECT_EQ(conflicts, env.compaction_runner().total_conflicts());
}

TEST_F(IntegrationTest, QuotaBreachesPreventWritesUntilCompaction) {
  // The §7 pain point: a tenant at its namespace quota cannot write;
  // compaction (plus retention) frees objects and unblocks the tenant.
  sim::SimEnvironment env;
  ASSERT_TRUE(env.catalog().CreateDatabase("tight", 6'000).ok());
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "tight", 10 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  // Fill to the quota with repeated small writes until one fails.
  engine::WriteSpec spam;
  spam.table = "tight.orders";
  spam.logical_bytes = 64 * kMiB;
  spam.profile = engine::UntunedUserJobProfile();
  bool hit_quota = false;
  for (int i = 0; i < 200 && !hit_quota; ++i) {
    auto result = env.query_engine().ExecuteWrite(spam, env.clock().Now());
    if (!result.ok() && result.status().IsResourceExhausted()) {
      hit_quota = true;
    }
    env.clock().Advance(kMinute);
  }
  ASSERT_TRUE(hit_quota);

  // Compact the fleet-within-a-database.
  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kTable;
  preset.k = 10;
  auto service = sim::MakeMoopService(&env, preset);
  auto report = service->RunNow();
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->files_reduced(), 0);

  // The tenant can write again.
  auto result = env.query_engine().ExecuteWrite(spam, env.clock().Now());
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST_F(IntegrationTest, TpcdsMaintenanceDegradationAndRecovery) {
  // Figure 3's claim at test scale: maintenance degrades the single-user
  // phase; compaction restores it.
  sim::SimEnvironment env;
  workload::TpcdsOptions options;
  options.total_logical_bytes = 8 * kGiB;
  options.queries_per_pass = 20;
  workload::TpcdsWorkload tpcds(options);
  ASSERT_TRUE(tpcds.Setup(&env.catalog(), &env.query_engine(), 0).ok());
  Rng rng(5);

  auto run_pass = [&]() {
    // The same query set every pass, so passes are directly comparable.
    Rng pass_rng(5);
    double total = 0;
    for (const auto& [table, partition] :
         tpcds.SingleUserQueries(&pass_rng)) {
      auto result = env.query_engine().ExecuteRead(table, partition,
                                                   env.clock().Now());
      EXPECT_TRUE(result.ok());
      total += result->total_seconds;
      env.clock().Advance(static_cast<SimTime>(result->total_seconds) + 1);
    }
    return total;
  };
  const double initial = run_pass();
  for (const engine::WriteSpec& write : tpcds.MaintenanceWrites(0.05, &rng)) {
    ASSERT_TRUE(
        env.query_engine().ExecuteWrite(write, env.clock().Now()).ok());
    env.clock().Advance(kMinute);
  }
  const double degraded = run_pass();
  EXPECT_GT(degraded, initial * 1.1);

  for (const std::string& table : tpcds.TableNames()) {
    engine::CompactionRequest request;
    request.table = table;
    auto result = env.compaction_runner().Run(request, env.clock().Now());
    ASSERT_TRUE(result.ok());
    if (result->committed) {
      (void)env.control_plane().RunRetentionFor(table, SimTime{0});
    }
  }
  const double restored = run_pass();
  // At this small test scale the recovery is partial (per-partition
  // outputs cannot merge further); the full-scale shape is asserted by
  // bench_fig03. Here: compaction must claw back most of the degradation.
  EXPECT_LT(restored, degraded);
  EXPECT_LT(restored, initial * 1.3);
}

TEST_F(IntegrationTest, SnapshotScopeServicesFreshDataOnly) {
  sim::SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 4 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  // First full compaction.
  sim::StrategyPreset table_preset;
  table_preset.scope = sim::ScopeStrategy::kTable;
  table_preset.k = 10;
  auto table_service = sim::MakeMoopService(&env, table_preset);
  env.clock().AdvanceTo(kHour);
  ASSERT_TRUE(table_service->RunNow().ok());

  // Fresh small writes, then a snapshot-scope pass: it must only touch
  // the fresh files.
  engine::WriteSpec fresh;
  fresh.table = "db.orders";
  fresh.logical_bytes = 96 * kMiB;
  fresh.profile = engine::UntunedUserJobProfile();
  ASSERT_TRUE(
      env.query_engine().ExecuteWrite(fresh, env.clock().Now()).ok());

  sim::StrategyPreset snap_preset;
  snap_preset.scope = sim::ScopeStrategy::kSnapshot;
  snap_preset.k = 50;
  auto snap_service = sim::MakeMoopService(&env, snap_preset);
  env.clock().AdvanceTo(2 * kHour);
  auto report = snap_service->RunNow();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->committed_count(), 0);
  for (const core::ScheduledCompaction& unit : report->executed) {
    EXPECT_EQ(unit.candidate.scope, core::CandidateScope::kSnapshot);
  }
}

}  // namespace
}  // namespace autocomp
