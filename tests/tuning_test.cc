// Unit tests for src/tuning: random search and CFO optimizers, and the
// Tuner driver.

#include <gtest/gtest.h>

#include <cmath>

#include "tuning/optimizer.h"

namespace autocomp::tuning {
namespace {

std::vector<ParamSpec> Quadratic2d() {
  return {{"x", -10, 10, false}, {"y", -10, 10, false}};
}

double Bowl(const ParamVector& p) {
  // Minimum 0 at (3, -2).
  return (p[0] - 3) * (p[0] - 3) + (p[1] + 2) * (p[1] + 2);
}

TEST(RandomSearchTest, SuggestionsWithinBounds) {
  RandomSearchOptimizer opt(Quadratic2d(), 1);
  for (int i = 0; i < 100; ++i) {
    const ParamVector p = opt.Suggest();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_GE(p[0], -10);
    EXPECT_LE(p[0], 10);
    EXPECT_GE(p[1], -10);
    EXPECT_LE(p[1], 10);
  }
}

TEST(RandomSearchTest, DeterministicForSeed) {
  RandomSearchOptimizer a(Quadratic2d(), 7);
  RandomSearchOptimizer b(Quadratic2d(), 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Suggest(), b.Suggest());
  }
}

TEST(RandomSearchTest, LogScaleSpansDecades) {
  RandomSearchOptimizer opt({{"t", 0.001, 1000, true}}, 3);
  bool saw_small = false, saw_large = false;
  for (int i = 0; i < 200; ++i) {
    const double v = opt.Suggest()[0];
    EXPECT_GE(v, 0.001 * 0.999);
    EXPECT_LE(v, 1000 * 1.001);
    if (v < 0.1) saw_small = true;
    if (v > 10) saw_large = true;
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_large);
}

TEST(CfoTest, ConvergesOnQuadratic) {
  CfoOptimizer opt(Quadratic2d(), 11);
  double best = 1e18;
  for (int i = 0; i < 200; ++i) {
    const ParamVector p = opt.Suggest();
    const double obj = Bowl(p);
    opt.Observe(p, obj);
    best = std::min(best, obj);
  }
  // Random search over the same budget typically lands around ~0.5; CFO
  // should localize well below that.
  EXPECT_LT(best, 0.5);
}

TEST(CfoTest, BeatsRandomSearchOnAverage) {
  auto run = [](Optimizer* opt, int iters) {
    double best = 1e18;
    for (int i = 0; i < iters; ++i) {
      const ParamVector p = opt->Suggest();
      const double obj = Bowl(p);
      opt->Observe(p, obj);
      best = std::min(best, obj);
    }
    return best;
  };
  double cfo_total = 0, rs_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    CfoOptimizer cfo(Quadratic2d(), seed);
    RandomSearchOptimizer rs(Quadratic2d(), seed);
    cfo_total += run(&cfo, 60);
    rs_total += run(&rs, 60);
  }
  EXPECT_LT(cfo_total, rs_total);
}

TEST(CfoTest, SuggestionsStayInBounds) {
  CfoOptimizer opt({{"x", 0, 1, false}}, 5);
  for (int i = 0; i < 100; ++i) {
    const ParamVector p = opt.Suggest();
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
    opt.Observe(p, p[0]);  // minimize x
  }
}

TEST(TunerTest, RunsAndTracksBest) {
  RandomSearchOptimizer opt(Quadratic2d(), 2);
  Tuner tuner(&opt, [](const ParamVector& p) -> Result<double> {
    return Bowl(p);
  });
  auto trials = tuner.Run(30);
  ASSERT_TRUE(trials.ok());
  EXPECT_EQ(trials->size(), 30u);
  auto best = tuner.Best();
  ASSERT_TRUE(best.ok());
  for (const Trial& t : *trials) {
    EXPECT_GE(t.objective, best->objective);
  }
}

TEST(TunerTest, BestBeforeRunFails) {
  RandomSearchOptimizer opt(Quadratic2d(), 2);
  Tuner tuner(&opt, [](const ParamVector&) -> Result<double> { return 0.0; });
  EXPECT_TRUE(tuner.Best().status().IsFailedPrecondition());
}

TEST(TunerTest, ObjectiveErrorPropagates) {
  RandomSearchOptimizer opt(Quadratic2d(), 2);
  int calls = 0;
  Tuner tuner(&opt, [&](const ParamVector&) -> Result<double> {
    if (++calls == 3) return Status::Internal("experiment crashed");
    return 1.0;
  });
  auto trials = tuner.Run(10);
  EXPECT_TRUE(trials.status().IsInternal());
  EXPECT_EQ(tuner.trials().size(), 2u);  // completed trials retained
}

}  // namespace
}  // namespace autocomp::tuning
