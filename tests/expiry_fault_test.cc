// Snapshot expiry + metadata-footprint reaping under fault injection
// (label: fault). The retention service commits lineage truncations
// through the same CAS path user writes use; injected commit races and
// storage failures must never cost a live file, double-reference a
// file, or drift the quota accounting — the InvariantChecker is the
// oracle, exactly as the fleet simulator runs it per epoch.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "lst/metadata_json.h"
#include "lst/transaction.h"
#include "sim/fleet_driver.h"
#include "storage/filesystem.h"

namespace autocomp {
namespace {

lst::Schema ExpirySchema() {
  return lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}});
}

lst::DataFile StoreFile(storage::DistributedFileSystem* dfs,
                        const std::string& path, int64_t size) {
  EXPECT_TRUE(dfs->CreateFile(path, size, size / 100).ok());
  lst::DataFile f;
  f.path = path;
  f.file_size_bytes = size;
  f.record_count = size / 100;
  return f;
}

// Fault-free reference behaviour first: with a persisted metadata
// footprint, expiring a snapshot also reaps the manifest objects only
// that snapshot referenced — the storage-side leak the maintenance
// loop's wiring closes.
TEST(ExpiryFootprintTest, RetentionReapsOrphanedManifestObjects) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::CatalogOptions catalog_options;
  catalog_options.persist_metadata = true;
  catalog::Catalog catalog(&clock, &dfs, catalog_options);
  catalog::ControlPlane plane(&catalog);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable("db", "t", ExpirySchema(),
                                   lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->Append({StoreFile(&dfs, "/data/db/t/s1", 100)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  clock.AdvanceTo(kHour);
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->RewriteFiles({"/data/db/t/s1"},
                                  {StoreFile(&dfs, "/data/db/t/c1", 90)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The append snapshot's manifest object is persisted and, pre-expiry,
  // still referenced by the lineage.
  ASSERT_TRUE(dfs.Exists("/data/db/t/metadata/manifest-000001.avro"));

  catalog::TablePolicy policy;
  policy.snapshot_retention = kHour;
  plane.SetPolicy("db.t", policy);
  clock.AdvanceTo(10 * kHour);
  auto report = plane.RunRetentionFor("db.t");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->snapshots_expired, 1);
  EXPECT_GE(report->metadata_objects_deleted, 1);
  EXPECT_FALSE(dfs.Exists("/data/db/t/metadata/manifest-000001.avro"));
  // The retained lineage keeps its objects and its data.
  EXPECT_TRUE(dfs.Exists("/data/db/t/c1"));
  auto metadata = catalog.LoadTable("db.t");
  ASSERT_TRUE(metadata.ok());
  for (const lst::Snapshot& snapshot : (*metadata)->snapshots()) {
    for (const lst::ManifestPtr& manifest : snapshot.manifests) {
      char name[64];
      std::snprintf(name, sizeof(name), "manifest-%06lld.avro",
                    static_cast<long long>(manifest->manifest_id()));
      EXPECT_TRUE(
          dfs.Exists((*metadata)->location() + "/metadata/" + name))
          << name;
    }
  }
  const fault::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckOrFail(catalog).ok());
}

// Retention sweeps under injected CAS races: whatever mix of expiry
// commits lands or aborts, no live file may be lost and every
// cross-layer invariant must hold.
TEST(ExpiryFaultTest, InjectedCommitRacesNeverLoseLiveFiles) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::CatalogOptions catalog_options;
  catalog_options.persist_metadata = true;
  catalog::Catalog catalog(&clock, &dfs, catalog_options);
  catalog::ControlPlane plane(&catalog);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());

  // Several tables, each with a rewrite lineage whose head replaces the
  // initial load — expiry has real orphans to delete.
  constexpr int kTables = 6;
  for (int i = 0; i < kTables; ++i) {
    const std::string t = "t" + std::to_string(i);
    auto table = catalog.CreateTable("db", t, ExpirySchema(),
                                     lst::PartitionSpec::Unpartitioned());
    ASSERT_TRUE(table.ok());
    const std::string dir = "/data/db/" + t;
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->Append({StoreFile(&dfs, dir + "/s1", 100)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    auto rewrite = table->NewTransaction();
    ASSERT_TRUE(rewrite
                    ->RewriteFiles({dir + "/s1"},
                                   {StoreFile(&dfs, dir + "/c1", 90)})
                    .ok());
    ASSERT_TRUE(rewrite->Commit().ok());
    catalog::TablePolicy policy;
    policy.snapshot_retention = kHour;
    plane.SetPolicy("db." + t, policy);
  }

  fault::FaultInjectorOptions fault_options;
  fault_options.enabled = true;
  fault_options.seed = 1234567;
  fault_options.profile.sites[fault::kSiteRetentionExpire] = {
      {0.5, fault::FaultKind::kCasRaceConflict}};
  fault::FaultInjector injector(fault_options);
  catalog.SetFaultInjector(&injector);
  injector.set_armed(true);

  // Repeated sweeps with the clock marching: some expiry commits hit
  // injected races (and retry through the CAS loop), some sweeps run
  // after everything already expired and must be no-ops.
  for (int sweep = 0; sweep < 6; ++sweep) {
    clock.AdvanceTo(clock.Now() + 3 * kHour);
    const catalog::RetentionReport report = plane.RunRetentionService();
    EXPECT_EQ(report.tables_processed, kTables);
  }
  injector.set_armed(false);
  EXPECT_GT(injector.total_injected(), 0) << "vacuous fault profile";

  // No live-file loss across expiry: every table's current head file
  // still exists, and the full cross-layer audit passes.
  for (int i = 0; i < kTables; ++i) {
    EXPECT_TRUE(dfs.Exists("/data/db/t" + std::to_string(i) + "/c1"));
  }
  const fault::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckOrFail(catalog).ok());
}

// The simulated maintenance loop end to end: a multi-day fleet replay
// with per-epoch invariant audits, persisted metadata, fault injection
// AND the lane evictor — retention ticks (including the ones deferred
// across eviction) must expire 3-day lineages without ever tripping the
// checker.
TEST(ExpiryFaultTest, FleetMaintenanceLoopExpiresUnderFaultsAndEviction) {
  sim::FleetSimOptions options;
  options.days = 4;
  options.seed = 7;
  options.fleet.num_databases = 4;
  options.fleet.tables_per_db = 3;
  options.fleet.new_tables_per_day = 1;
  options.env.namenode.rpc_capacity_per_hour = 300;
  options.env.catalog.persist_metadata = true;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kHour;
  options.check_invariants = true;
  options.max_resident_lanes = 2;
  options.evict_after_idle_hours = 2;
  options.env.fault.enabled = true;
  options.env.fault.seed = 424243;
  options.env.fault.profile.sites[fault::kSiteStorageOpen] = {
      {0.03, fault::FaultKind::kTimeout}};
  options.env.fault.profile.sites[fault::kSiteLstCommit] = {
      {0.05, fault::FaultKind::kCasRaceConflict}};
  options.env.fault.profile.sites[fault::kSiteRetentionExpire] = {
      {0.05, fault::FaultKind::kCasRaceConflict}};
  sim::FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->faults_injected, 0);
  EXPECT_GT(result->events_executed, 0);
}

}  // namespace
}  // namespace autocomp
