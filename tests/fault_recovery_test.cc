// Differential fault-recovery tests: a run with injected faults plus the
// bounded-retry machinery must converge to the SAME table end state as a
// fault-free run. This is the paper-level safety argument for running
// compaction autonomously at fleet scale — transient failures (CAS
// races, runner crashes, lost commit-listener events) may cost retries
// and wall-clock, but never change what the tables end up containing.
//
// End states are compared with fault::CatalogEndState, a path-free
// content digest (partition | size | records | content kind), because
// crash retries legitimately produce fresh output file names.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/cab.h"
#include "workload/tpch.h"

namespace autocomp {
namespace {

struct RunOutcome {
  std::map<std::string, std::string> end_state;
  int64_t injected = 0;
  int64_t runner_retries = 0;
  int64_t abandoned = 0;
  int64_t commits = 0;
  int64_t client_conflicts = 0;
};

workload::CabOptions SmallCab() {
  workload::CabOptions options;
  options.num_databases = 3;
  options.duration = 3 * kHour;
  return options;
}

/// One full CAB run: setup (injections disarmed), 3 hours of streams with
/// the given compaction strategy, invariant audit, end-state digest.
RunOutcome RunScenario(sim::ScopeStrategy scope,
                       const fault::FaultSchedule& schedule,
                       bool enable_faults, bool deferred) {
  sim::EnvironmentOptions env_options;
  env_options.fault.enabled = enable_faults;
  env_options.fault.seed = 5;
  env_options.fault.schedule = schedule;
  sim::SimEnvironment env(env_options);

  env.fault_injector().set_armed(false);
  workload::CabWorkload cab(SmallCab());
  for (const std::string& db : cab.DatabaseNames()) {
    EXPECT_TRUE(workload::SetupTpchDatabase(
                    &env.catalog(), &env.query_engine(), db, 4 * kGiB,
                    engine::UntunedUserJobProfile(), 0)
                    .ok());
  }
  env.fault_injector().set_armed(true);

  sim::StrategyPreset preset;
  preset.scope = scope;
  preset.k = 50;
  preset.deferred_act = deferred;
  auto service = sim::MakeMoopService(&env, preset);
  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.deferred_compaction = deferred;
  sim::EventDriver driver(&env, &metrics, driver_options);
  driver.AttachService(service.get());
  const Status run = driver.Run(cab.GenerateEvents(), 3 * kHour);
  EXPECT_TRUE(run.ok()) << run;

  // Safety net regardless of what was injected: no live-file loss or
  // duplication, consistent accounting, acyclic lineage.
  const fault::InvariantChecker checker;
  const Status invariants = checker.CheckOrFail(env.catalog());
  EXPECT_TRUE(invariants.ok()) << invariants;

  RunOutcome out;
  out.end_state = fault::CatalogEndState(env.catalog());
  out.injected = env.fault_injector().total_injected();
  out.runner_retries = env.compaction_runner().total_retries();
  out.abandoned = env.compaction_runner().total_abandoned();
  out.commits = env.compaction_runner().total_committed();
  out.client_conflicts = metrics.TotalCount("client_conflicts");
  return out;
}

constexpr sim::ScopeStrategy kAllScopes[] = {
    sim::ScopeStrategy::kTable, sim::ScopeStrategy::kHybrid,
    sim::ScopeStrategy::kPartition, sim::ScopeStrategy::kSnapshot};

TEST(FaultRecoveryTest, InjectedCasRacesConvergeForEveryGenerator) {
  // CAS races are retryable by design: user writes rebase via
  // CommitWithRetries, compaction commits via the runner's policy loop
  // with re-validation. Hits are spaced further apart than any retry
  // budget so no chain of injections can exhaust one.
  fault::FaultSchedule schedule;
  for (const uint64_t hit : {2ull, 8ull, 14ull, 20ull, 26ull, 32ull}) {
    schedule.Add(fault::kSiteLstCommit, hit,
                 fault::FaultKind::kCasRaceConflict);
  }
  for (const sim::ScopeStrategy scope : kAllScopes) {
    const RunOutcome baseline =
        RunScenario(scope, {}, /*enable_faults=*/false, /*deferred=*/true);
    const RunOutcome faulted =
        RunScenario(scope, schedule, /*enable_faults=*/true,
                    /*deferred=*/true);
    EXPECT_GT(faulted.injected, 0)
        << "schedule never fired for scope " << static_cast<int>(scope);
    EXPECT_GT(faulted.runner_retries + faulted.client_conflicts, 0)
        << "injected races were never retried";
    EXPECT_EQ(faulted.abandoned, 0)
        << "a retryable race was treated as terminal";
    EXPECT_EQ(baseline.commits, faulted.commits);
    const std::string diff =
        fault::DiffEndStates(baseline.end_state, faulted.end_state);
    EXPECT_TRUE(diff.empty())
        << "scope " << static_cast<int>(scope) << " diverged:\n" << diff;
  }
}

TEST(FaultRecoveryTest, RunnerCrashesConvergeWithFreshOutputs) {
  // Mid-job runner crashes abandon partial outputs (cleaned up, verified
  // by the invariant audit inside RunScenario) and retry with fresh file
  // names; the content digest must still match the crash-free run.
  // Synchronous compaction keeps the timeline interleaving identical so
  // the comparison isolates the crash-retry path itself.
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteEngineRunner, 1, fault::FaultKind::kRunnerCrash);
  schedule.Add(fault::kSiteEngineRunner, 4, fault::FaultKind::kRunnerCrash);
  const RunOutcome baseline =
      RunScenario(sim::ScopeStrategy::kHybrid, {}, /*enable_faults=*/false,
                  /*deferred=*/false);
  const RunOutcome faulted =
      RunScenario(sim::ScopeStrategy::kHybrid, schedule,
                  /*enable_faults=*/true, /*deferred=*/false);
  EXPECT_GT(faulted.injected, 0);
  EXPECT_GT(faulted.runner_retries, 0) << "crashes were not retried";
  EXPECT_EQ(faulted.abandoned, 0);
  EXPECT_EQ(baseline.commits, faulted.commits);
  const std::string diff =
      fault::DiffEndStates(baseline.end_state, faulted.end_state);
  EXPECT_TRUE(diff.empty()) << diff;
}

TEST(FaultRecoveryTest, DroppedAndDuplicatedEventsConverge) {
  // The incremental stats index consumes commit-listener events; dropped
  // events leave it lagging, duplicated ones replay a version it already
  // covers. Both must be absorbed (version-reconciled at read time)
  // without changing a single compaction decision.
  fault::FaultSchedule schedule;
  for (const uint64_t hit : {1ull, 5ull, 9ull, 13ull}) {
    schedule.Add(fault::kSiteCatalogCommitEvent, hit,
                 fault::FaultKind::kDropEvent);
  }
  for (const uint64_t hit : {3ull, 7ull, 11ull, 15ull}) {
    schedule.Add(fault::kSiteCatalogCommitEvent, hit,
                 fault::FaultKind::kDuplicateEvent);
  }
  const RunOutcome baseline =
      RunScenario(sim::ScopeStrategy::kHybrid, {}, /*enable_faults=*/false,
                  /*deferred=*/true);
  const RunOutcome faulted = RunScenario(
      sim::ScopeStrategy::kHybrid, schedule, /*enable_faults=*/true,
      /*deferred=*/true);
  EXPECT_GT(faulted.injected, 0);
  EXPECT_EQ(baseline.commits, faulted.commits);
  const std::string diff =
      fault::DiffEndStates(baseline.end_state, faulted.end_state);
  EXPECT_TRUE(diff.empty()) << diff;
}

TEST(FaultRecoveryTest, TerminalValidationAbortAbandonsWithoutDamage) {
  // A validation abort is terminal: the affected operation is lost (a
  // user write fails, or a compaction is abandoned with its outputs
  // reaped), so the end state legitimately differs from fault-free. The
  // contract is weaker but non-negotiable: every invariant still holds
  // (RunScenario audits them) and nothing is retried pointlessly.
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteLstCommit, 2, fault::FaultKind::kValidationAbort);
  schedule.Add(fault::kSiteLstCommit, 6, fault::FaultKind::kValidationAbort);
  const RunOutcome faulted =
      RunScenario(sim::ScopeStrategy::kHybrid, schedule,
                  /*enable_faults=*/true, /*deferred=*/true);
  EXPECT_GT(faulted.injected, 0);
  EXPECT_EQ(faulted.runner_retries, 0)
      << "terminal aborts must not consume retry budget";
}

}  // namespace
}  // namespace autocomp
