/// \file thread_pool_test.cc
/// \brief Work-stealing ThreadPool tests. Labelled "concurrency" — run
/// them under -DAUTOCOMP_SANITIZE=thread to validate the synchronization.

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.h"

namespace autocomp {
namespace {

TEST(ThreadPoolTest, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  // ~ThreadPool drains the queues before joining the workers.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&visits](int64_t i) { visits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller.
  pool.ParallelFor(1, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(16, [&seen](int64_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  // Outer iterations run on pool workers; the nested call must not
  // deadlock waiting for workers that are already occupied.
  pool.ParallelFor(8, [&pool, &total](int64_t) {
    pool.ParallelFor(8, [&total](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForUsesMultipleWorkers) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single-core host: fan-out cannot be observed";
  }
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  pool.ParallelFor(256, [&](int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GE(threads.size(), 2u);
}

TEST(ThreadPoolTest, ParallelForAccumulatesIntoSlots) {
  // The per-index-slot pattern the pipeline uses: concurrent writers,
  // disjoint indices, no synchronization needed beyond the join.
  ThreadPool pool(4);
  constexpr int64_t kN = 4096;
  std::vector<int64_t> slots(kN, -1);
  pool.ParallelFor(kN, [&slots](int64_t i) { slots[i] = i * i; });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(slots[i], i * i);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &ran] {
      pool.Submit([&ran] { ran.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  // Two external threads driving the same pool at once.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::thread a([&] {
    pool.ParallelFor(1000, [&total](int64_t) { total.fetch_add(1); });
  });
  std::thread b([&] {
    pool.ParallelFor(1000, [&total](int64_t) { total.fetch_add(1); });
  });
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPoolTest, OptionsFromConfig) {
  Config config;
  config.SetInt("threadpool.workers", 3);
  EXPECT_EQ(ThreadPoolOptions::FromConfig(config).workers, 3);
  EXPECT_EQ(ThreadPoolOptions::FromConfig(Config{}).workers, 0);
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  ThreadPool* a = ThreadPool::Default();
  ThreadPool* b = ThreadPool::Default();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->worker_count(), 1);
  // Once constructed, the hint can no longer change it.
  EXPECT_FALSE(ThreadPool::SetDefaultWorkers(2));
}

}  // namespace
}  // namespace autocomp
