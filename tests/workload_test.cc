// Unit tests for src/workload: event ordering, TPC-H/TPC-DS setup, CAB
// stream generation, trickle ingestion, and the fleet generator.

#include <gtest/gtest.h>

#include <set>

#include "sim/environment.h"
#include "workload/cab.h"
#include "workload/events.h"
#include "workload/fleet.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"
#include "workload/trickle.h"

namespace autocomp::workload {
namespace {

// ----------------------------------------------------------------- Events

TEST(EventsTest, SortIsChronologicalAndStable) {
  std::vector<QueryEvent> events(3);
  events[0].time = 30;
  events[0].table = "c";
  events[1].time = 10;
  events[1].table = "a";
  events[2].time = 10;
  events[2].table = "b";
  SortEvents(&events);
  EXPECT_EQ(events[0].table, "a");
  EXPECT_EQ(events[1].table, "b");
  EXPECT_EQ(events[2].table, "c");
}

TEST(EventsTest, MergeTimelines) {
  std::vector<QueryEvent> t1(1), t2(2);
  t1[0].time = 5;
  t2[0].time = 1;
  t2[1].time = 9;
  auto merged = MergeTimelines({t1, t2});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].time, 1);
  EXPECT_EQ(merged[2].time, 9);
}

// ------------------------------------------------------------------ TPC-H

TEST(TpchTest, SchemaAndPartitions) {
  EXPECT_EQ(LineitemSchema().fields().size(), 16u);
  EXPECT_TRUE(LineitemPartitionSpec().is_partitioned());
  EXPECT_TRUE(
      LineitemPartitionSpec().Validate(LineitemSchema()).ok());
  const auto months = LineitemMonthPartitions();
  EXPECT_EQ(months.size(), 7u * 12u);  // 1992..1998
  EXPECT_EQ(months.front(), "shipdate_month=1992-01");
  EXPECT_EQ(months.back(), "shipdate_month=1998-12");
}

TEST(TpchTest, TableWeightsSumToOne) {
  double total = 0;
  for (const TpchTableSpec& spec : TpchTables()) total += spec.size_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TpchTest, SetupCreatesAndLoads) {
  sim::SimEnvironment env;
  ASSERT_TRUE(SetupTpchDatabase(&env.catalog(), &env.query_engine(), "tpch",
                                2 * kGiB, engine::UntunedUserJobProfile(), 0)
                  .ok());
  EXPECT_EQ(env.catalog().ListTables("tpch").size(), TpchTables().size());
  auto meta = env.catalog().LoadTable("tpch.lineitem");
  ASSERT_TRUE(meta.ok());
  EXPECT_GT((*meta)->live_file_count(), 0);
  EXPECT_TRUE((*meta)->partition_spec().is_partitioned());
  auto orders = env.catalog().LoadTable("tpch.orders");
  EXPECT_FALSE((*orders)->partition_spec().is_partitioned());
}

// -------------------------------------------------------------------- CAB

TEST(CabTest, DatabaseNames) {
  CabOptions options;
  options.num_databases = 3;
  CabWorkload cab(options);
  const auto names = cab.DatabaseNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "cab_db00");
  EXPECT_EQ(names[2], "cab_db02");
}

TEST(CabTest, EventsAreSortedAndInWindow) {
  CabOptions options;
  options.num_databases = 4;
  options.duration = 2 * kHour;
  CabWorkload cab(options);
  const auto events = cab.GenerateEvents();
  ASSERT_FALSE(events.empty());
  SimTime prev = -1;
  for (const QueryEvent& e : events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    EXPECT_GE(e.time, options.start_time);
    EXPECT_LT(e.time, options.start_time + options.duration);
  }
}

TEST(CabTest, DeterministicForSeed) {
  CabOptions options;
  options.num_databases = 2;
  const auto a = CabWorkload(options).GenerateEvents();
  const auto b = CabWorkload(options).GenerateEvents();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

TEST(CabTest, ContainsAllStreamArchetypes) {
  CabOptions options;
  options.num_databases = 8;
  const auto events = CabWorkload(options).GenerateEvents();
  std::set<std::string> streams;
  for (const QueryEvent& e : events) streams.insert(e.stream);
  EXPECT_TRUE(streams.count("dashboard"));
  EXPECT_TRUE(streams.count("interactive"));
  EXPECT_TRUE(streams.count("hourly-etl"));
  EXPECT_TRUE(streams.count("maintenance"));
}

TEST(CabTest, SpikeHourHasMoreWrites) {
  CabOptions options;
  options.num_databases = 10;
  options.spike_hour = 3;
  options.spike_multiplier = 4.0;
  const auto events = CabWorkload(options).GenerateEvents();
  std::map<int, int> writes_by_hour;
  for (const QueryEvent& e : events) {
    if (e.is_write && e.stream == "hourly-etl") {
      writes_by_hour[static_cast<int>(e.time / kHour)]++;
    }
  }
  // The spike hour has clearly more ETL writes than hour 1.
  EXPECT_GT(writes_by_hour[3], writes_by_hour[1] * 2);
}

TEST(CabTest, WritesTargetBothTableKinds) {
  CabOptions options;
  options.num_databases = 10;
  const auto events = CabWorkload(options).GenerateEvents();
  bool lineitem = false, orders = false;
  for (const QueryEvent& e : events) {
    if (!e.is_write) continue;
    if (e.write.table.find("lineitem") != std::string::npos) lineitem = true;
    if (e.write.table.find("orders") != std::string::npos) orders = true;
  }
  EXPECT_TRUE(lineitem);
  EXPECT_TRUE(orders);
}

// ----------------------------------------------------------------- TPC-DS

TEST(TpcdsTest, TableWeightsAndPartitions) {
  double total = 0;
  for (const TpcdsTableSpec& spec : TpcdsTables()) total += spec.size_fraction;
  EXPECT_NEAR(total, 1.0, 0.01);
  EXPECT_EQ(TpcdsMonthPartitions().size(), 60u);
}

TEST(TpcdsTest, SetupAndSingleUser) {
  sim::SimEnvironment env;
  TpcdsOptions options;
  options.total_logical_bytes = 4 * kGiB;
  TpcdsWorkload tpcds(options);
  ASSERT_TRUE(tpcds.Setup(&env.catalog(), &env.query_engine(), 0).ok());
  EXPECT_EQ(env.catalog().ListTables("tpcds").size(), TpcdsTables().size());

  Rng rng(1);
  const auto queries = tpcds.SingleUserQueries(&rng);
  EXPECT_EQ(queries.size(), 99u);
  // All referenced tables exist.
  for (const auto& [table, partition] : queries) {
    EXPECT_TRUE(env.catalog().GetTable(table).ok()) << table;
  }
}

TEST(TpcdsTest, MaintenanceTargetsFactTables) {
  TpcdsWorkload tpcds({});
  Rng rng(1);
  const auto writes = tpcds.MaintenanceWrites(0.03, &rng);
  ASSERT_FALSE(writes.empty());
  for (const engine::WriteSpec& w : writes) {
    EXPECT_EQ(w.kind, engine::WriteKind::kOverwrite);
    EXPECT_FALSE(w.partitions.empty());
    EXPECT_GT(w.logical_bytes, 0);
  }
}

// ---------------------------------------------------------------- Trickle

TEST(TrickleTest, FiveMinuteCadence) {
  TrickleOptions options;
  options.num_topics = 2;
  options.duration = kHour;
  TrickleIngestion trickle(options);
  const auto events = trickle.GenerateEvents();
  EXPECT_EQ(events.size(), 12u * 2u);  // 12 flushes x 2 topics
  for (const QueryEvent& e : events) {
    EXPECT_TRUE(e.is_write);
    EXPECT_EQ(e.time % (5 * kMinute), 0);
  }
}

TEST(TrickleTest, HourlyRollupCompactsClosedPartition) {
  sim::SimEnvironment env;
  TrickleOptions options;
  options.num_topics = 1;
  options.duration = kHour;
  TrickleIngestion trickle(options);
  ASSERT_TRUE(trickle.Setup(&env.catalog(), 0).ok());
  for (const QueryEvent& e : trickle.GenerateEvents()) {
    env.clock().AdvanceTo(e.time);
    ASSERT_TRUE(env.query_engine().ExecuteWrite(e.write, e.time).ok());
  }
  env.clock().AdvanceTo(kHour);
  const std::string table = trickle.TableNames()[0];
  const int64_t before = (*env.catalog().LoadTable(table))->live_file_count();
  auto committed = trickle.RunHourlyRollup(&env.compaction_runner(),
                                           &env.control_plane(), kHour);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, 1);
  EXPECT_LT((*env.catalog().LoadTable(table))->live_file_count(), before);
}

// ------------------------------------------------------------------ Fleet

TEST(FleetTest, SetupCreatesFleet) {
  sim::SimEnvironment env;
  FleetOptions options;
  options.num_databases = 3;
  options.tables_per_db = 4;
  FleetWorkload fleet(options);
  ASSERT_TRUE(fleet.Setup(&env.catalog(), &env.query_engine(),
                          &env.control_plane(), 0)
                  .ok());
  EXPECT_EQ(fleet.TableNames().size(), 12u);
  EXPECT_EQ(env.catalog().ListDatabases().size(), 3u);
  // Quotas installed.
  EXPECT_GT(env.catalog().DatabaseQuota("tenant000").total_objects, 0);
}

TEST(FleetTest, DailyEventsReferenceOnboardedTables) {
  sim::SimEnvironment env;
  FleetOptions options;
  options.num_databases = 2;
  options.tables_per_db = 5;
  FleetWorkload fleet(options);
  ASSERT_TRUE(fleet.Setup(&env.catalog(), &env.query_engine(),
                          &env.control_plane(), 0)
                  .ok());
  const auto events = fleet.EventsForDay(0);
  ASSERT_FALSE(events.empty());
  bool has_write = false, has_read = false;
  for (const QueryEvent& e : events) {
    const std::string& table = e.is_write ? e.write.table : e.table;
    EXPECT_TRUE(env.catalog().GetTable(table).ok()) << table;
    has_write |= e.is_write;
    has_read |= !e.is_write;
    EXPECT_GE(e.time, 0);
    EXPECT_LT(e.time, kDay);
  }
  EXPECT_TRUE(has_write);
  EXPECT_TRUE(has_read);
}

TEST(FleetTest, OnboardingGrowsFleet) {
  sim::SimEnvironment env;
  FleetOptions options;
  options.num_databases = 2;
  options.tables_per_db = 2;
  options.new_tables_per_day = 3;
  FleetWorkload fleet(options);
  ASSERT_TRUE(fleet.Setup(&env.catalog(), &env.query_engine(),
                          &env.control_plane(), 0)
                  .ok());
  const size_t before = fleet.TableNames().size();
  ASSERT_TRUE(
      fleet.OnboardNewTables(&env.catalog(), &env.query_engine(), 1, kDay)
          .ok());
  EXPECT_EQ(fleet.TableNames().size(), before + 3);
}

TEST(FleetTest, EventsDeterministicPerDay) {
  FleetOptions options;
  options.num_databases = 2;
  options.tables_per_db = 3;
  sim::SimEnvironment env1, env2;
  FleetWorkload f1(options), f2(options);
  ASSERT_TRUE(f1.Setup(&env1.catalog(), &env1.query_engine(),
                       &env1.control_plane(), 0)
                  .ok());
  ASSERT_TRUE(f2.Setup(&env2.catalog(), &env2.query_engine(),
                       &env2.control_plane(), 0)
                  .ok());
  const auto a = f1.EventsForDay(2);
  const auto b = f2.EventsForDay(2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

}  // namespace
}  // namespace autocomp::workload
