// Tests for the write-configuration advisor (§8 recommendations).

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "sim/environment.h"
#include "workload/tpch.h"

namespace autocomp {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.catalog().CreateDatabase("db").ok());
  }

  void MakeTable(const std::string& name) {
    auto table = env_.catalog().CreateTable(
        "db", name, lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    ASSERT_TRUE(table.ok());
  }

  void Write(const std::string& table, int64_t logical,
             engine::WriterProfile profile,
             engine::WriteKind kind = engine::WriteKind::kAppend) {
    engine::WriteSpec spec;
    spec.table = table;
    spec.kind = kind;
    spec.logical_bytes = logical;
    spec.partitions = {"m=2024-01"};
    spec.profile = profile;
    ASSERT_TRUE(env_.query_engine().ExecuteWrite(spec, env_.clock().Now()).ok());
    env_.clock().Advance(kMinute);
  }

  std::vector<core::WriteAdvice> Advise() {
    core::WriteConfigAdvisor advisor;
    auto advice = advisor.Analyze(&env_.catalog());
    EXPECT_TRUE(advice.ok());
    return advice.ok() ? *advice : std::vector<core::WriteAdvice>{};
  }

  bool HasAdvice(const std::vector<core::WriteAdvice>& advice,
                 const std::string& table, core::AdviceKind kind) {
    for (const core::WriteAdvice& a : advice) {
      if (a.table == table && a.kind == kind) return true;
    }
    return false;
  }

  sim::SimEnvironment env_;
};

TEST_F(AdvisorTest, WellTunedTableGetsNoAdvice) {
  MakeTable("good");
  for (int i = 0; i < 4; ++i) {
    Write("db.good", 2 * kGiB, engine::TunedPipelineProfile());
  }
  EXPECT_TRUE(Advise().empty());
}

TEST_F(AdvisorTest, UntunedWriterFlagged) {
  MakeTable("spray");
  for (int i = 0; i < 4; ++i) {
    Write("db.spray", 512 * kMiB, engine::UntunedUserJobProfile());
  }
  const auto advice = Advise();
  EXPECT_TRUE(HasAdvice(advice, "db.spray", core::AdviceKind::kUntunedWriter));
  // The message carries the numbers an operator needs.
  for (const core::WriteAdvice& a : advice) {
    if (a.kind == core::AdviceKind::kUntunedWriter) {
      EXPECT_NE(a.message.find("coalescing"), std::string::npos);
    }
  }
}

TEST_F(AdvisorTest, TrickleAppendsFlagged) {
  MakeTable("trickle");
  engine::WriterProfile checkpoint;
  checkpoint.target_file_bytes = 8 * kMiB;
  checkpoint.write_tasks = 2;
  checkpoint.size_jitter_sigma = 0;
  for (int i = 0; i < 6; ++i) {
    Write("db.trickle", 16 * kMiB, checkpoint);
  }
  EXPECT_TRUE(HasAdvice(Advise(), "db.trickle",
                        core::AdviceKind::kTrickleAppends));
}

TEST_F(AdvisorTest, MorBacklogFlagged) {
  MakeTable("mor");
  Write("db.mor", 2 * kGiB, engine::TunedPipelineProfile());
  engine::WriterProfile tiny;
  tiny.target_file_bytes = 4 * kMiB;
  tiny.write_tasks = 2;
  for (int i = 0; i < 10; ++i) {
    Write("db.mor", 4 * kMiB, tiny, engine::WriteKind::kMorDelete);
  }
  EXPECT_TRUE(
      HasAdvice(Advise(), "db.mor", core::AdviceKind::kMorDeltaBacklog));
}

TEST_F(AdvisorTest, ClusteringOpportunityOnHotTables) {
  MakeTable("hot");
  MakeTable("cold");
  Write("db.hot", 4 * kGiB, engine::TunedPipelineProfile());
  Write("db.cold", 4 * kGiB, engine::TunedPipelineProfile());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(env_.query_engine()
                    .ExecuteRead("db.hot", std::nullopt, env_.clock().Now())
                    .ok());
    env_.clock().Advance(kMinute);
  }
  const auto advice = Advise();
  EXPECT_TRUE(HasAdvice(advice, "db.hot",
                        core::AdviceKind::kClusteringOpportunity));
  EXPECT_FALSE(HasAdvice(advice, "db.cold",
                         core::AdviceKind::kClusteringOpportunity));
}

TEST_F(AdvisorTest, OrderedBySeverityAndDeterministic) {
  MakeTable("a_spray");
  MakeTable("b_spray");
  for (int i = 0; i < 4; ++i) {
    Write("db.a_spray", 512 * kMiB, engine::UntunedUserJobProfile());
    Write("db.b_spray", 512 * kMiB, engine::UntunedUserJobProfile());
  }
  const auto first = Advise();
  const auto second = Advise();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].table, second[i].table);
    EXPECT_EQ(first[i].kind, second[i].kind);
    if (i > 0) EXPECT_GE(first[i - 1].severity, first[i].severity);
  }
}

TEST_F(AdvisorTest, FewCommitsNoJudgement) {
  MakeTable("young");
  Write("db.young", 32 * kMiB, engine::UntunedUserJobProfile());
  // Only one commit: below min_commits, no writer advice yet.
  EXPECT_FALSE(
      HasAdvice(Advise(), "db.young", core::AdviceKind::kUntunedWriter));
}

TEST_F(AdvisorTest, KindNames) {
  EXPECT_STREQ(core::AdviceKindName(core::AdviceKind::kUntunedWriter),
               "untuned-writer");
  EXPECT_STREQ(core::AdviceKindName(core::AdviceKind::kMorDeltaBacklog),
               "mor-delta-backlog");
}

}  // namespace
}  // namespace autocomp
