// Unit tests for src/sim: metrics recorder, table printer, environment
// wiring, the event driver, and strategy presets.

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/cab.h"
#include "workload/tpch.h"

namespace autocomp::sim {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, SeriesRecordsInOrder) {
  MetricsRecorder metrics;
  metrics.Record("files", 0, 100);
  metrics.Record("files", kHour, 90);
  const auto& series = metrics.Series("files");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].value, 100);
  EXPECT_EQ(series[1].time, kHour);
  EXPECT_TRUE(metrics.Series("unknown").empty());
}

TEST(MetricsTest, HourlyObservationsBucketed) {
  MetricsRecorder metrics;
  metrics.Observe("lat", 10 * kMinute, 1.0);
  metrics.Observe("lat", 50 * kMinute, 3.0);
  metrics.Observe("lat", kHour + kMinute, 10.0);
  const auto summaries = metrics.HourlySummaries("lat");
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].first, 0);
  EXPECT_EQ(summaries[0].second.count, 2);
  EXPECT_DOUBLE_EQ(summaries[0].second.median, 2.0);
  EXPECT_EQ(summaries[1].second.count, 1);
  EXPECT_EQ(metrics.AllObservations("lat").count(), 3);
}

TEST(MetricsTest, HourlyCounters) {
  MetricsRecorder metrics;
  metrics.Increment("conflicts", 5 * kMinute);
  metrics.Increment("conflicts", 6 * kMinute, 2);
  metrics.Increment("conflicts", 3 * kHour);
  const auto counts = metrics.HourlyCounts("conflicts");
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].second, 3);
  EXPECT_EQ(counts[1].first, 3 * kHour);
  EXPECT_EQ(metrics.TotalCount("conflicts"), 4);
  EXPECT_EQ(metrics.TotalCount("none"), 0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"long-name", "22"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(FmtTest, Decimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
}

// ------------------------------------------------------------ Environment

TEST(EnvironmentTest, DefaultsMatchPaperSetup) {
  SimEnvironment env;
  EXPECT_EQ(env.query_cluster().options().executors, 15);
  EXPECT_EQ(env.compaction_cluster().options().executors, 3);
  EXPECT_EQ(env.TotalFileCount(), 0);
  EXPECT_EQ(env.clock().Now(), 0);
}

TEST(EnvironmentTest, FileCountTracksStorage) {
  SimEnvironment env;
  ASSERT_TRUE(env.dfs().CreateFile("/x/f", 1, 1).ok());
  EXPECT_EQ(env.TotalFileCount(), 1);
}

// ----------------------------------------------------------------- Driver

TEST(DriverTest, RunsEventsAndRecordsMetrics) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  MetricsRecorder metrics;
  EventDriver driver(&env, &metrics);

  std::vector<workload::QueryEvent> events(2);
  events[0].time = 10 * kMinute;
  events[0].table = "db.lineitem";
  events[1].time = 20 * kMinute;
  events[1].is_write = true;
  events[1].write.table = "db.orders";
  events[1].write.logical_bytes = 8 * kMiB;
  ASSERT_TRUE(driver.Run(events, kHour).ok());

  EXPECT_EQ(env.clock().Now(), kHour);
  EXPECT_EQ(metrics.AllObservations("read_latency_s").count(), 1);
  EXPECT_EQ(metrics.AllObservations("write_latency_s").count(), 1);
  EXPECT_GT(driver.total_read_seconds(), 0);
  // files_total sampled repeatedly.
  EXPECT_GE(metrics.Series("files_total").size(), 5u);
}

TEST(DriverTest, ServiceTickedWhenDue) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 10;
  preset.trigger_interval = kHour;
  preset.first_trigger = kHour;
  auto service = MakeMoopService(&env, preset);

  MetricsRecorder metrics;
  EventDriver driver(&env, &metrics);
  driver.AttachService(service.get());
  const int64_t before = env.TotalFileCount();
  ASSERT_TRUE(driver.Run({}, 2 * kHour).ok());
  ASSERT_GE(service->history().size(), 1u);
  EXPECT_GT(service->history()[0].committed_count(), 0);
  EXPECT_LT(env.TotalFileCount(), before);
}

TEST(DriverTest, FailedWritesRecordedNotFatal) {
  SimEnvironment env;
  MetricsRecorder metrics;
  EventDriver driver(&env, &metrics);
  workload::QueryEvent bad;
  bad.time = kMinute;
  bad.is_write = true;
  bad.write.table = "ghost.table";
  bad.write.logical_bytes = kMiB;
  ASSERT_TRUE(driver.Run({bad}, 2 * kMinute).ok());
  EXPECT_EQ(metrics.TotalCount("write_failures"), 1);
}

// ---------------------------------------------------------------- Presets

TEST(PresetTest, BudgetedPresetUsesDynamicK) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 2 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kHybrid;
  preset.budget_gb_hours = 0.05;  // tiny: selects only a few units
  auto service = MakeMoopService(&env, preset);
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->ranked.size(), report->selected.size());
  double cost = 0;
  for (const auto& sc : report->selected) {
    cost += sc.traited.traits.at("compute_cost_gbhr");
  }
  EXPECT_LE(cost, 0.05 + 1e-9);
}

TEST(PresetTest, TableScopePresetCompacts) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 3;
  auto service = MakeMoopService(&env, preset);
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->selected.size(), 3u);
  EXPECT_GT(report->committed_count(), 0);
}


// ------------------------------------------------- deferred compaction

TEST(DeferredDriverTest, PlansExecuteOnTheTimeline) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 4 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 3;
  preset.deferred_act = true;  // decide-only pipeline
  auto service = MakeMoopService(&env, preset);

  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  const int64_t before = env.TotalFileCount();
  ASSERT_TRUE(driver.Run({}, 4 * kHour).ok());

  // The service itself executed nothing (null scheduler)...
  for (const core::PipelineRunReport& report : service->history()) {
    EXPECT_TRUE(report.executed.empty());
    EXPECT_FALSE(report.selected.empty());
  }
  // ...but the driver finalized the rewrites on the timeline.
  EXPECT_GT(metrics.TotalCount("compaction_commits"), 0);
  EXPECT_LT(env.TotalFileCount(), before);
  // Commits happen strictly after the trigger (nonzero rewrite window).
  const auto commits = metrics.HourlyCounts("compaction_commits");
  ASSERT_FALSE(commits.empty());
  EXPECT_GE(commits.front().first, kHour - kHour % kHour);
}

TEST(DeferredDriverTest, PerTableUnitsSerialized) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 6 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kPartition;  // many units on one table
  preset.k = 20;
  preset.deferred_act = true;
  auto service = MakeMoopService(&env, preset);
  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run({}, 3 * kHour).ok());
  // With within-table serialization and strict validation, none of the
  // partition rewrites conflict with each other.
  EXPECT_GT(metrics.TotalCount("compaction_commits"), 5);
  EXPECT_EQ(metrics.TotalCount("cluster_conflicts"), 0);
}

TEST(DeferredDriverTest, InflightUnitsFlushedAtRunEnd) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 8 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 5;
  preset.deferred_act = true;
  auto service = MakeMoopService(&env, preset);
  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  // End the run right after the trigger: big rewrites are still inflight
  // and must be finalized (no orphan outputs left dangling).
  ASSERT_TRUE(driver.Run({}, kHour + kMinute).ok());
  int64_t live_total = 0;
  for (const std::string& name : env.catalog().ListAllTables()) {
    auto meta = env.catalog().LoadTable(name);
    for (const lst::DataFile& f : (*meta)->LiveFiles()) {
      EXPECT_TRUE(env.dfs().Exists(f.path));
      ++live_total;
    }
  }
  EXPECT_GT(live_total, 0);
}

}  // namespace
}  // namespace autocomp::sim
