// Unit tests for src/storage: NameNode namespace, quotas, RPC/timeout
// model, and federated DistributedFileSystem routing.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "storage/filesystem.h"
#include "storage/namenode.h"

namespace autocomp::storage {
namespace {

class NameNodeTest : public ::testing::Test {
 protected:
  SimulatedClock clock_{0};
  NameNode nn_{&clock_};
};

TEST_F(NameNodeTest, CreateStatDelete) {
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f1.parquet", 100, 10).ok());
  EXPECT_TRUE(nn_.Exists("/data/db/t/f1.parquet"));
  auto info = nn_.Stat("/data/db/t/f1.parquet");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size_bytes, 100);
  EXPECT_EQ(info->record_count, 10);
  ASSERT_TRUE(nn_.DeleteFile("/data/db/t/f1.parquet").ok());
  EXPECT_FALSE(nn_.Exists("/data/db/t/f1.parquet"));
}

TEST_F(NameNodeTest, CreateRejectsDuplicatesAndBadPaths) {
  ASSERT_TRUE(nn_.CreateFile("/a/b", 1, 1).ok());
  EXPECT_TRUE(nn_.CreateFile("/a/b", 1, 1).IsAlreadyExists());
  EXPECT_TRUE(nn_.CreateFile("relative/path", 1, 1).IsInvalidArgument());
  EXPECT_TRUE(nn_.CreateFile("/a/neg", -5, 1).IsInvalidArgument());
}

TEST_F(NameNodeTest, DeleteMissingIsNotFound) {
  EXPECT_TRUE(nn_.DeleteFile("/nope").IsNotFound());
}

TEST_F(NameNodeTest, ObjectCountsIncludeDirectories) {
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f1", 1, 1).ok());
  // Objects: /data, /data/db, /data/db/t, and the file = 4.
  EXPECT_EQ(nn_.stats().total_objects, 4);
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f2", 1, 1).ok());
  // Only the new file adds an object.
  EXPECT_EQ(nn_.stats().total_objects, 5);
  EXPECT_EQ(nn_.stats().file_count, 2);
}

TEST_F(NameNodeTest, ListFilesByPrefix) {
  ASSERT_TRUE(nn_.CreateFile("/data/db/t1/a", 1, 1).ok());
  ASSERT_TRUE(nn_.CreateFile("/data/db/t1/b", 2, 1).ok());
  ASSERT_TRUE(nn_.CreateFile("/data/db/t2/c", 3, 1).ok());
  const auto t1 = nn_.ListFiles("/data/db/t1");
  EXPECT_EQ(t1.size(), 2u);
  const auto all = nn_.ListFiles("/data/db");
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(nn_.ListFiles("/data/db/t3").empty());
}

TEST_F(NameNodeTest, ListDoesNotMatchSiblingPrefix) {
  ASSERT_TRUE(nn_.CreateFile("/data/db/t1/a", 1, 1).ok());
  ASSERT_TRUE(nn_.CreateFile("/data/db/t10/b", 1, 1).ok());
  EXPECT_EQ(nn_.ListFiles("/data/db/t1").size(), 1u);
}

TEST_F(NameNodeTest, NamespaceQuotaEnforced) {
  nn_.SetNamespaceQuota("/data/db", 3);
  // First file: dir /data/db/t + the file = 2 objects under /data/db.
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f1", 1, 1).ok());
  // Second file adds 1 object -> total 3, at the limit.
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f2", 1, 1).ok());
  // Third file would exceed.
  EXPECT_TRUE(nn_.CreateFile("/data/db/t/f3", 1, 1).IsResourceExhausted());
  // Deleting frees quota.
  ASSERT_TRUE(nn_.DeleteFile("/data/db/t/f1").ok());
  EXPECT_TRUE(nn_.CreateFile("/data/db/t/f3", 1, 1).ok());
}

TEST_F(NameNodeTest, QuotaDoesNotApplyOutsideSubtree) {
  nn_.SetNamespaceQuota("/data/db", 1);
  EXPECT_TRUE(nn_.CreateFile("/other/f", 1, 1).ok());
  EXPECT_TRUE(nn_.CreateFile("/other/g", 1, 1).ok());
}

TEST_F(NameNodeTest, QuotaStatusReportsUsage) {
  nn_.SetNamespaceQuota("/data/db", 100);
  ASSERT_TRUE(nn_.CreateFile("/data/db/t/f1", 1, 1).ok());
  const QuotaStatus q = nn_.GetQuota("/data/db");
  EXPECT_EQ(q.total_objects, 100);
  EXPECT_EQ(q.used_objects, 2);  // dir t + file
  EXPECT_NEAR(q.utilization(), 0.02, 1e-9);
}

TEST_F(NameNodeTest, ClearingQuotaRemovesLimit) {
  nn_.SetNamespaceQuota("/data/db", 1);
  nn_.SetNamespaceQuota("/data/db", 0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(nn_.CreateFile("/data/db/t/f" + std::to_string(i), 1, 1).ok());
  }
}

TEST_F(NameNodeTest, OpenCountsCallsPerHour) {
  ASSERT_TRUE(nn_.CreateFile("/a/f", 1, 1).ok());
  ASSERT_TRUE(nn_.Open("/a/f").ok());
  ASSERT_TRUE(nn_.Open("/a/f").ok());
  EXPECT_EQ(nn_.stats().open_calls, 2);
  EXPECT_EQ(nn_.OpenCallsInHour(0), 2);
  clock_.AdvanceTo(kHour + 1);
  ASSERT_TRUE(nn_.Open("/a/f").ok());
  EXPECT_EQ(nn_.OpenCallsInHour(kHour), 1);
  EXPECT_EQ(nn_.OpenCallsInHour(0), 2);
}

TEST_F(NameNodeTest, OpenMissingIsNotFound) {
  EXPECT_TRUE(nn_.Open("/ghost").status().IsNotFound());
}

TEST(NameNodeTimeoutTest, NoTimeoutsBelowCapacity) {
  SimulatedClock clock(0);
  NameNodeOptions opts;
  opts.rpc_capacity_per_hour = 1000;
  NameNode nn(&clock, opts);
  ASSERT_TRUE(nn.CreateFile("/a/f", 1, 1).ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(nn.Open("/a/f").ok());
  }
  EXPECT_EQ(nn.stats().timeouts, 0);
  EXPECT_DOUBLE_EQ(nn.CurrentTimeoutProbability(), 0.0);
}

TEST(NameNodeTimeoutTest, OverloadCausesTimeouts) {
  SimulatedClock clock(0);
  NameNodeOptions opts;
  opts.rpc_capacity_per_hour = 100;
  opts.max_timeout_probability = 0.5;
  opts.overload_factor = 2.0;
  NameNode nn(&clock, opts);
  ASSERT_TRUE(nn.CreateFile("/a/f", 1, 1).ok());
  int timeouts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!nn.Open("/a/f").ok()) ++timeouts;
  }
  EXPECT_GT(timeouts, 100);  // heavily overloaded
  EXPECT_GT(nn.CurrentTimeoutProbability(), 0.0);
  EXPECT_LE(nn.CurrentTimeoutProbability(), 0.5);
}

TEST(NameNodeTimeoutTest, TimeoutProbabilityCapped) {
  SimulatedClock clock(0);
  NameNodeOptions opts;
  opts.rpc_capacity_per_hour = 10;
  opts.max_timeout_probability = 0.3;
  NameNode nn(&clock, opts);
  ASSERT_TRUE(nn.CreateFile("/a/f", 1, 1).ok());
  for (int i = 0; i < 1000; ++i) (void)nn.Open("/a/f");
  EXPECT_DOUBLE_EQ(nn.CurrentTimeoutProbability(), 0.3);
}

TEST(NameNodeTimeoutTest, LoadResetsNextHour) {
  SimulatedClock clock(0);
  NameNodeOptions opts;
  opts.rpc_capacity_per_hour = 10;
  NameNode nn(&clock, opts);
  ASSERT_TRUE(nn.CreateFile("/a/f", 1, 1).ok());
  for (int i = 0; i < 100; ++i) (void)nn.Open("/a/f");
  EXPECT_GT(nn.CurrentTimeoutProbability(), 0.0);
  clock.AdvanceTo(kHour);
  EXPECT_DOUBLE_EQ(nn.CurrentTimeoutProbability(), 0.0);
}

// -------------------------------------------------- DistributedFileSystem

TEST(DfsTest, SingleShardBasicOps) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 1);
  ASSERT_TRUE(dfs.CreateFile("/data/db/t/f", 10, 1).ok());
  EXPECT_TRUE(dfs.Exists("/data/db/t/f"));
  EXPECT_EQ(dfs.Stat("/data/db/t/f")->size_bytes, 10);
  EXPECT_EQ(dfs.ListFiles("/data/db").size(), 1u);
  ASSERT_TRUE(dfs.DeleteFile("/data/db/t/f").ok());
}

TEST(DfsTest, MountRoutesToShard) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 3);
  ASSERT_TRUE(dfs.AddMount("/data/tenant1", 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/data/tenant1/t/f", 5, 1).ok());
  EXPECT_EQ(dfs.shard(1).stats().file_count, 1);
  EXPECT_EQ(dfs.shard(0).stats().file_count, 0);
  EXPECT_EQ(dfs.shard(2).stats().file_count, 0);
}

TEST(DfsTest, LongestMountPrefixWins) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 2);
  ASSERT_TRUE(dfs.AddMount("/data", 0).ok());
  ASSERT_TRUE(dfs.AddMount("/data/hot", 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/data/hot/f", 1, 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/data/cold/f", 1, 1).ok());
  EXPECT_EQ(dfs.shard(1).stats().file_count, 1);
  EXPECT_EQ(dfs.shard(0).stats().file_count, 1);
}

TEST(DfsTest, MountValidation) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 2);
  EXPECT_TRUE(dfs.AddMount("/ok", 5).IsInvalidArgument());
  EXPECT_TRUE(dfs.AddMount("bad", 0).IsInvalidArgument());
}

TEST(DfsTest, AggregateStatsAcrossShards) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 2);
  ASSERT_TRUE(dfs.AddMount("/a", 0).ok());
  ASSERT_TRUE(dfs.AddMount("/b", 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/a/f", 1, 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/b/g", 1, 1).ok());
  EXPECT_EQ(dfs.AggregateStats().file_count, 2);
  (void)dfs.Open("/a/f");
  (void)dfs.Open("/b/g");
  EXPECT_EQ(dfs.AggregateStats().open_calls, 2);
  EXPECT_EQ(dfs.OpenCallsInHour(0), 2);
}

TEST(DfsTest, ListMergesAcrossShards) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 4);
  // Hash routing may scatter these; ListFiles must still find both.
  ASSERT_TRUE(dfs.CreateFile("/x/t/f1", 1, 1).ok());
  ASSERT_TRUE(dfs.CreateFile("/x/t/f2", 1, 1).ok());
  const auto files = dfs.ListFiles("/x/t");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_LT(files[0].path, files[1].path);  // sorted
}

TEST(DfsTest, QuotaViaFacade) {
  SimulatedClock clock(0);
  DistributedFileSystem dfs(&clock, 1);
  // Files live directly under the quota root, so each is one object.
  dfs.SetNamespaceQuota("/data/db", 1);
  ASSERT_TRUE(dfs.CreateFile("/data/db/f", 1, 1).ok());
  EXPECT_TRUE(dfs.CreateFile("/data/db/g", 1, 1).IsResourceExhausted());
  EXPECT_EQ(dfs.GetQuota("/data/db").used_objects, 1);
}


TEST(NameNodeTimeoutTest, ObserverNameNodesAbsorbReadTraffic) {
  // §1: observer NameNodes add read capacity; the same load that
  // overloads a lone NameNode stays under capacity with observers.
  SimulatedClock clock(0);
  NameNodeOptions lone;
  lone.rpc_capacity_per_hour = 100;
  NameNodeOptions scaled = lone;
  scaled.observer_namenodes = 3;  // 4x read capacity

  NameNode without(&clock, lone);
  NameNode with(&clock, scaled);
  ASSERT_TRUE(without.CreateFile("/a/f", 1, 1).ok());
  ASSERT_TRUE(with.CreateFile("/a/f", 1, 1).ok());
  for (int i = 0; i < 300; ++i) {
    (void)without.Open("/a/f");
    (void)with.Open("/a/f");
  }
  EXPECT_GT(without.CurrentTimeoutProbability(), 0.0);
  EXPECT_DOUBLE_EQ(with.CurrentTimeoutProbability(), 0.0);
}

}  // namespace
}  // namespace autocomp::storage
