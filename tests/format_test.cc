// Unit and property tests for src/format: the columnar file model and
// bin-packing.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "format/binpack.h"
#include "format/columnar.h"

namespace autocomp::format {
namespace {

// ------------------------------------------------------- ColumnarFileModel

TEST(ColumnarModelTest, PeakCompressionForLargeFiles) {
  ColumnarFileModel model;
  EXPECT_DOUBLE_EQ(model.CompressionRatioFor(1 * kGiB),
                   model.options().peak_compression_ratio);
}

TEST(ColumnarModelTest, CompressionDecaysForSmallFiles) {
  ColumnarFileModel model;
  const double tiny = model.CompressionRatioFor(64 * kKiB);
  const double small = model.CompressionRatioFor(8 * kMiB);
  const double large = model.CompressionRatioFor(256 * kMiB);
  EXPECT_LT(tiny, small);
  EXPECT_LT(small, large);
  EXPECT_GE(tiny, 1.0);
}

TEST(ColumnarModelTest, ZeroAndNegativeLogicalBytes) {
  ColumnarFileModel model;
  EXPECT_DOUBLE_EQ(model.CompressionRatioFor(0), 1.0);
  EXPECT_GE(model.StoredBytesFor(0), model.options().footer_bytes);
  EXPECT_GE(model.StoredBytesFor(-100), model.options().footer_bytes);
}

TEST(ColumnarModelTest, StoredIncludesFooter) {
  ColumnarFileModel model;
  const int64_t stored = model.StoredBytesFor(300 * kMiB);
  EXPECT_GT(stored, model.options().footer_bytes);
  // 300MiB at ratio 3 ~ 100MiB + footer.
  EXPECT_NEAR(static_cast<double>(stored),
              static_cast<double>(100 * kMiB + model.options().footer_bytes),
              1.0 * kMiB);
}

TEST(ColumnarModelTest, LogicalForStoredRoundTripsAtPeak) {
  ColumnarFileModel model;
  const int64_t logical = 600 * kMiB;  // well above efficient chunk
  const int64_t stored = model.StoredBytesFor(logical);
  const int64_t back = model.LogicalBytesForStored(stored);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(logical),
              static_cast<double>(4 * kMiB));
}

TEST(ColumnarModelTest, LogicalForStoredRoundTripsForSmallFiles) {
  // The inverse must honour the degraded small-file ratio, or compaction
  // would show no storage savings.
  ColumnarFileModel model;
  for (int64_t logical : {256 * kKiB, 1 * kMiB, 4 * kMiB, 12 * kMiB,
                          24 * kMiB, 31 * kMiB, 33 * kMiB}) {
    const int64_t stored = model.StoredBytesFor(logical);
    const int64_t back = model.LogicalBytesForStored(stored);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(logical),
                0.05 * static_cast<double>(logical) + 64 * kKiB)
        << "logical=" << logical;
  }
}

TEST(ColumnarModelTest, MergingSmallFilesSavesStorage) {
  ColumnarFileModel model;
  // 64 files of 4MiB logical each, stored individually vs merged.
  const int64_t per_file_stored = model.StoredBytesFor(4 * kMiB);
  int64_t merged_logical = 0;
  for (int i = 0; i < 64; ++i) {
    merged_logical += model.LogicalBytesForStored(per_file_stored);
  }
  const int64_t merged_stored = model.StoredBytesFor(merged_logical);
  EXPECT_LT(merged_stored, 64 * per_file_stored * 2 / 3);
}

TEST(ColumnarModelTest, RowGroups) {
  ColumnarFileModel model;
  EXPECT_EQ(model.RowGroupsFor(0), 0);
  EXPECT_EQ(model.RowGroupsFor(1), 1);
  EXPECT_EQ(model.RowGroupsFor(128 * kMiB), 1);
  EXPECT_EQ(model.RowGroupsFor(128 * kMiB + 1), 2);
}

TEST(ColumnarModelTest, FragmentationOverheadPositiveForManySmallFiles) {
  ColumnarFileModel model;
  const int64_t logical = 1 * kGiB;
  EXPECT_EQ(model.FragmentationOverhead(logical, 1), 0);
  const int64_t split100 = model.FragmentationOverhead(logical, 100);
  const int64_t split1000 = model.FragmentationOverhead(logical, 1000);
  EXPECT_GT(split100, 0);
  EXPECT_GT(split1000, split100);
}

TEST(ColumnarModelTest, RecordsScaleWithBytes) {
  ColumnarFileModel model;
  EXPECT_EQ(model.RecordsFor(model.options().bytes_per_record * 10), 10);
}

// ---------------------------------------------------------------- BinPack

TEST(BinPackTest, EmptyInput) {
  EXPECT_TRUE(FirstFitDecreasing({}, 100).empty());
  EXPECT_EQ(MinBinsLowerBound({}, 100), 0);
  EXPECT_DOUBLE_EQ(MeanFillFraction({}, 100), 1.0);
}

TEST(BinPackTest, SingleItemFits) {
  const auto bins = FirstFitDecreasing({40}, 100);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].total_bytes, 40);
  EXPECT_EQ(bins[0].item_indices, std::vector<size_t>{0});
}

TEST(BinPackTest, PacksSmallItemsTogether) {
  const auto bins = FirstFitDecreasing({30, 30, 30, 30}, 100);
  ASSERT_EQ(bins.size(), 2u);  // 3 + 1
  EXPECT_EQ(bins[0].item_indices.size() + bins[1].item_indices.size(), 4u);
}

TEST(BinPackTest, OversizedItemGetsOwnBin) {
  const auto bins = FirstFitDecreasing({150, 10, 10}, 100);
  // 150 alone; 10+10 together.
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].total_bytes, 150);
  EXPECT_EQ(bins[0].item_indices.size(), 1u);
  EXPECT_EQ(bins[1].item_indices.size(), 2u);
}

TEST(BinPackTest, OversizedBinNeverShared) {
  const auto bins = FirstFitDecreasing({100, 1}, 100);
  // 100 == capacity counts as oversized (>=).
  ASSERT_EQ(bins.size(), 2u);
}

TEST(BinPackTest, DeterministicOrder) {
  const std::vector<int64_t> sizes = {10, 90, 50, 50, 30};
  const auto a = FirstFitDecreasing(sizes, 100);
  const auto b = FirstFitDecreasing(sizes, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item_indices, b[i].item_indices);
  }
}

TEST(BinPackTest, MinBinsLowerBound) {
  EXPECT_EQ(MinBinsLowerBound({50, 50, 50}, 100), 2);
  EXPECT_EQ(MinBinsLowerBound({100}, 100), 1);
  EXPECT_EQ(MinBinsLowerBound({101}, 100), 2);
}

TEST(BinPackTest, MeanFillExcludesOversized) {
  const auto bins = FirstFitDecreasing({150, 80}, 100);
  EXPECT_DOUBLE_EQ(MeanFillFraction(bins, 100), 0.8);
}

// Property sweep: FFD never overfills a bin, never loses or duplicates an
// item, and stays within 1.7x + 1 of the lower bound (the classic FFD
// guarantee is 11/9 OPT + 6/9).
class BinPackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinPackPropertyTest, InvariantsHoldOnRandomInstances) {
  Rng rng(GetParam());
  const int64_t capacity = 512;
  const int n = static_cast<int>(rng.UniformInt(1, 200));
  std::vector<int64_t> sizes;
  sizes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Mix of tiny, medium, and oversized items.
    const double pick = rng.NextDouble();
    if (pick < 0.7) {
      sizes.push_back(rng.UniformInt(1, capacity / 4));
    } else if (pick < 0.95) {
      sizes.push_back(rng.UniformInt(capacity / 4, capacity - 1));
    } else {
      sizes.push_back(rng.UniformInt(capacity, capacity * 2));
    }
  }
  const auto bins = FirstFitDecreasing(sizes, capacity);

  std::vector<int> seen(sizes.size(), 0);
  int64_t oversized_bins = 0;
  for (const Bin& bin : bins) {
    int64_t total = 0;
    for (size_t idx : bin.item_indices) {
      ASSERT_LT(idx, sizes.size());
      seen[idx]++;
      total += sizes[idx];
    }
    EXPECT_EQ(total, bin.total_bytes);
    if (bin.total_bytes > capacity) {
      // A bin may exceed capacity only when it holds a single oversized
      // item; multi-item bins can at most be exactly full.
      EXPECT_EQ(bin.item_indices.size(), 1u);
      EXPECT_GE(sizes[bin.item_indices.front()], capacity);
    }
    if (bin.item_indices.size() == 1 &&
        sizes[bin.item_indices.front()] >= capacity) {
      ++oversized_bins;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);  // exactly-once

  // Quality: within FFD's guarantee of the lower bound (+ oversized).
  const int64_t lower = MinBinsLowerBound(sizes, capacity);
  EXPECT_LE(static_cast<int64_t>(bins.size()),
            (lower * 17) / 9 + 1 + oversized_bins);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BinPackPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

}  // namespace
}  // namespace autocomp::format
