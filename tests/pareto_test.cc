// Tests for the §8 Pareto-frontier extension: dominance, frontier
// extraction, the frontier selector, and the weight sweep.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/pareto.h"

namespace autocomp::core {
namespace {

TraitedCandidate Make(const std::string& id, double benefit, double cost) {
  TraitedCandidate tc;
  tc.observed.candidate.table = id;
  tc.traits["file_count_reduction"] = benefit;
  tc.traits["compute_cost_gbhr"] = cost;
  return tc;
}

TEST(DominanceTest, Definition) {
  ParetoPoint a{0, 10, 5, false};
  ParetoPoint b{1, 8, 6, false};
  ParetoPoint c{2, 10, 5, false};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, c));  // equal points do not dominate
  ParetoPoint d{3, 12, 5, false};
  EXPECT_TRUE(Dominates(d, a));  // better on one axis, equal other
}

TEST(FrontierTest, SimpleFrontier) {
  // (benefit, cost): A(10,1) B(20,5) C(15,6) D(30,10) — C is dominated
  // by B (less benefit, more cost); A, B, D are on the frontier.
  std::vector<TraitedCandidate> pool = {
      Make("A", 10, 1), Make("B", 20, 5), Make("C", 15, 6),
      Make("D", 30, 10)};
  const auto points = ComputeParetoFrontier(pool, "file_count_reduction",
                                            "compute_cost_gbhr");
  ASSERT_EQ(points.size(), 4u);
  std::set<std::string> frontier;
  for (const ParetoPoint& p : points) {
    if (p.on_frontier) {
      frontier.insert(pool[p.index].observed.candidate.table);
    }
  }
  EXPECT_EQ(frontier, (std::set<std::string>{"A", "B", "D"}));
}

TEST(FrontierTest, AllIdenticalAllOnFrontier) {
  std::vector<TraitedCandidate> pool = {Make("A", 5, 5), Make("B", 5, 5)};
  const auto points = ComputeParetoFrontier(pool, "file_count_reduction",
                                            "compute_cost_gbhr");
  for (const ParetoPoint& p : points) EXPECT_TRUE(p.on_frontier);
}

TEST(FrontierTest, EmptyPool) {
  EXPECT_TRUE(ComputeParetoFrontier({}, "a", "b").empty());
}

class FrontierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrontierPropertyTest, FrontierIsExactlyTheNonDominatedSet) {
  Rng rng(GetParam());
  std::vector<TraitedCandidate> pool;
  const int n = static_cast<int>(rng.UniformInt(1, 120));
  for (int i = 0; i < n; ++i) {
    pool.push_back(Make("t" + std::to_string(i),
                        std::floor(rng.Uniform(0, 50)),
                        std::floor(rng.Uniform(0, 50))));
  }
  const auto points = ComputeParetoFrontier(pool, "file_count_reduction",
                                            "compute_cost_gbhr");
  // Brute-force dominance check against the sweep result.
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[j], points[i])) dominated = true;
    }
    EXPECT_EQ(points[i].on_frontier, !dominated) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{15}));

TEST(ParetoSelectorTest, KeepsOnlyFrontierSortedByBenefit) {
  std::vector<TraitedCandidate> pool = {
      Make("A", 10, 1), Make("B", 20, 5), Make("C", 15, 6),
      Make("D", 30, 10)};
  const auto ranked = MoopRanker::PaperDefault().Rank(pool);
  ParetoFrontierSelector selector("file_count_reduction",
                                  "compute_cost_gbhr");
  const auto selected = selector.Select(ranked);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].candidate().table, "D");
  EXPECT_EQ(selected[1].candidate().table, "B");
  EXPECT_EQ(selected[2].candidate().table, "A");
}

TEST(WeightSweepTest, EveryWinnerIsOnTheFrontier) {
  Rng rng(9);
  std::vector<TraitedCandidate> pool;
  for (int i = 0; i < 60; ++i) {
    pool.push_back(Make("t" + std::to_string(i), rng.Uniform(0, 100),
                        rng.Uniform(0, 100)));
  }
  const auto rows = SweepWeights(pool, "file_count_reduction",
                                 "compute_cost_gbhr", 11);
  ASSERT_EQ(rows.size(), 11u);
  for (const WeightSweepRow& row : rows) {
    EXPECT_TRUE(row.on_frontier)
        << "w1=" << row.benefit_weight << " picked " << row.top_candidate_id;
  }
  // Extremes: w1=0 minimizes cost; w1=1 maximizes benefit.
  double min_cost = 1e300, max_benefit = -1e300;
  for (const auto& tc : pool) {
    min_cost = std::min(min_cost, tc.traits.at("compute_cost_gbhr"));
    max_benefit = std::max(max_benefit, tc.traits.at("file_count_reduction"));
  }
  EXPECT_DOUBLE_EQ(rows.front().cost, min_cost);
  EXPECT_DOUBLE_EQ(rows.back().benefit, max_benefit);
}

TEST(WeightSweepTest, DegenerateInputs) {
  EXPECT_TRUE(SweepWeights({}, "a", "b").empty());
  EXPECT_TRUE(SweepWeights({Make("x", 1, 1)}, "a", "b", 1).empty());
}

}  // namespace
}  // namespace autocomp::core
