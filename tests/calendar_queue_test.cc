// CalendarQueue: the hour-bucketed timing wheel behind
// EventDriver::AdvanceTo. The contract under test is semantic equality
// with the min-scan + min-heap structure it replaced: boundaries surface
// in (time, then table-name) order, timers can be re-armed and disarmed
// without disturbing other entries, and bucket rollover across hour
// boundaries never drops or reorders work.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/calendar_queue.h"

namespace autocomp::sim {
namespace {

using Kind = CalendarQueue::Kind;

TEST(CalendarQueueTest, PopsInTimeOrderAcrossHourBuckets) {
  CalendarQueue q;
  // Entries straddling several hour buckets, inserted out of order.
  const std::vector<SimTime> times = {3 * kHour + 10, 10, kHour + 5,
                                      3 * kHour,      kHour, 10 * kHour};
  for (size_t i = 0; i < times.size(); ++i) {
    q.ScheduleCompaction(times[i], static_cast<int32_t>(i));
  }
  EXPECT_EQ(q.compaction_count(), 6);
  EXPECT_EQ(q.bucket_count(), 4);  // hours 0, 1 (x2), 3 (x2), 10

  std::vector<SimTime> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (const SimTime want : sorted) {
    const auto peek = q.PeekNext();
    ASSERT_TRUE(peek.has_value());
    EXPECT_EQ(*peek, want);
    const auto e = q.PopCompactionDue(want);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->time, want);
  }
  EXPECT_EQ(q.compaction_count(), 0);
  EXPECT_FALSE(q.PopCompactionDue(100 * kHour).has_value());
  EXPECT_FALSE(q.PeekNext().has_value());
  EXPECT_EQ(q.bucket_count(), 0) << "exhausted buckets must be collected";
}

TEST(CalendarQueueTest, CutoffIsRespected) {
  CalendarQueue q;
  q.ScheduleCompaction(kHour + 30, 0);
  q.ScheduleCompaction(2 * kHour, 1);
  // Cutoff inside the first entry's bucket but before the entry itself.
  EXPECT_FALSE(q.PopCompactionDue(kHour + 29).has_value());
  const auto e = q.PopCompactionDue(kHour + 30);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->table, 0);
  EXPECT_FALSE(q.PopCompactionDue(2 * kHour - 1).has_value());
  EXPECT_EQ(q.compaction_count(), 1);
}

TEST(CalendarQueueTest, SameTickOrderingMatchesMinScanTieBreak) {
  // Ids 0..3 carry names that sort differently from the ids — the
  // interned-id regression this comparator exists to prevent. The heap
  // the wheel replaced popped ties by (end_time, table name).
  const std::vector<std::string> names = {"db.zeta", "db.alpha", "db.mid",
                                          "db.beta"};
  CalendarQueue q([&names](int32_t a, int32_t b) {
    return names[static_cast<size_t>(a)] < names[static_cast<size_t>(b)];
  });
  const SimTime tick = 5 * kHour + 17;
  for (int32_t id = 0; id < 4; ++id) q.ScheduleCompaction(tick, id);
  q.ScheduleCompaction(tick - 1, 2);  // earlier time beats any name

  std::vector<int32_t> order;
  while (const auto e = q.PopCompactionDue(tick)) order.push_back(e->table);
  // alpha(1) < beta(3) < mid(2) < zeta(0) after the earlier entry.
  const std::vector<int32_t> want = {2, 1, 3, 2, 0};
  EXPECT_EQ(order, want);
}

TEST(CalendarQueueTest, TimerSupersedeAndDisarm) {
  CalendarQueue q;
  q.ArmTimer(Kind::kSample, 4 * kHour);
  ASSERT_TRUE(q.PeekNext().has_value());
  EXPECT_EQ(*q.PeekNext(), 4 * kHour);

  // Re-arm earlier: the new schedule wins, the old entry is a tombstone.
  q.ArmTimer(Kind::kSample, kHour);
  EXPECT_EQ(*q.PeekNext(), kHour);

  // Re-arm later: the earlier entry must no longer surface.
  q.ArmTimer(Kind::kSample, 6 * kHour);
  EXPECT_EQ(*q.PeekNext(), 6 * kHour);

  // Independent kinds do not disturb each other.
  q.ArmTimer(Kind::kRetention, 2 * kHour);
  EXPECT_EQ(*q.PeekNext(), 2 * kHour);
  q.DisarmTimer(Kind::kRetention);
  EXPECT_EQ(*q.PeekNext(), 6 * kHour);

  q.DisarmTimer(Kind::kSample);
  EXPECT_FALSE(q.PeekNext().has_value());
}

TEST(CalendarQueueTest, DisarmThenRearmAtSameInstant) {
  // Regression: pruning a disarmed timer's entry must reset the
  // placed-entry bookkeeping, or a re-arm at the same instant would be
  // deduplicated against the pruned entry and silently lost.
  CalendarQueue q;
  q.ArmTimer(Kind::kService, 3 * kHour);
  EXPECT_EQ(*q.PeekNext(), 3 * kHour);
  q.DisarmTimer(Kind::kService);
  EXPECT_FALSE(q.PeekNext().has_value());  // prunes the tombstone
  q.ArmTimer(Kind::kService, 3 * kHour);
  const auto peek = q.PeekNext();
  ASSERT_TRUE(peek.has_value()) << "re-armed boundary was lost";
  EXPECT_EQ(*peek, 3 * kHour);
}

TEST(CalendarQueueTest, TimersDoNotBlockLaterCompactions) {
  // A timer-only front bucket must not stop the scan from reaching a due
  // compaction in a later bucket.
  CalendarQueue q;
  q.ArmTimer(Kind::kSample, kHour);  // front bucket: timer only
  q.ScheduleCompaction(3 * kHour, 7);
  const auto e = q.PopCompactionDue(3 * kHour);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->table, 7);
  EXPECT_EQ(*q.PeekNext(), kHour) << "timer must survive the pop scan";
}

// Randomized equivalence against a brute-force min-scan reference: any
// interleaving of schedules, pops, and timer re-arms must surface the
// same boundaries in the same order as the structure-free scan.
TEST(CalendarQueueTest, RandomizedEquivalenceWithMinScanReference) {
  std::mt19937 rng(20260809);
  const std::vector<std::string> names = {"t.c", "t.a", "t.d", "t.b", "t.e"};
  const auto name_less = [&names](int32_t a, int32_t b) {
    return names[static_cast<size_t>(a)] < names[static_cast<size_t>(b)];
  };
  for (int round = 0; round < 20; ++round) {
    CalendarQueue q(name_less);
    std::vector<CalendarQueue::Entry> reference;  // compactions only
    std::uniform_int_distribution<SimTime> time_dist(0, 12 * kHour);
    std::uniform_int_distribution<int32_t> table_dist(0, 4);
    for (int i = 0; i < 40; ++i) {
      const SimTime t = time_dist(rng);
      const int32_t table = table_dist(rng);
      q.ScheduleCompaction(t, table);
      reference.push_back({t, Kind::kCompactionEnd, table});
    }
    // Interleave some timer churn; timers never affect compaction pops.
    q.ArmTimer(Kind::kSample, time_dist(rng));
    q.ArmTimer(Kind::kService, time_dist(rng));
    q.DisarmTimer(Kind::kService);

    const SimTime cutoff = time_dist(rng);
    while (true) {
      // Reference: min by (time, name) among entries <= cutoff.
      auto best = reference.end();
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->time > cutoff) continue;
        if (best == reference.end() || it->time < best->time ||
            (it->time == best->time && name_less(it->table, best->table))) {
          best = it;
        }
      }
      const auto popped = q.PopCompactionDue(cutoff);
      if (best == reference.end()) {
        EXPECT_FALSE(popped.has_value()) << "round " << round;
        break;
      }
      ASSERT_TRUE(popped.has_value()) << "round " << round;
      EXPECT_EQ(popped->time, best->time) << "round " << round;
      EXPECT_EQ(popped->table, best->table) << "round " << round;
      reference.erase(best);
    }
    EXPECT_EQ(q.compaction_count(),
              static_cast<int64_t>(std::count_if(
                  reference.begin(), reference.end(),
                  [cutoff](const CalendarQueue::Entry& e) {
                    return e.time > cutoff;
                  })));
  }
}

}  // namespace
}  // namespace autocomp::sim
