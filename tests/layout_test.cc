// Tests for the §8 extensions: clustering (Z-order-style) rewrites with
// selective-scan row-group skipping, and workload-aware traits fed by the
// catalog's access telemetry.

#include <gtest/gtest.h>

#include "core/observe.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "workload/tpch.h"

namespace autocomp {
namespace {

class LayoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.catalog().CreateDatabase("db").ok());
    auto table = env_.catalog().CreateTable(
        "db", "t", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    ASSERT_TRUE(table.ok());
    engine::WriteSpec spec;
    spec.table = "db.t";
    spec.logical_bytes = 1 * kGiB;
    spec.partitions = {"m=2024-01"};
    spec.profile = engine::UntunedUserJobProfile();
    ASSERT_TRUE(env_.query_engine().ExecuteWrite(spec, 0).ok());
  }

  engine::CompactionResult Compact(bool cluster) {
    engine::CompactionRequest request;
    request.table = "db.t";
    request.cluster_output = cluster;
    auto result = env_.compaction_runner().Run(request, env_.clock().Now());
    EXPECT_TRUE(result.ok());
    if (result->committed) {
      (void)env_.control_plane().RunRetentionFor("db.t", SimTime{0});
    }
    env_.clock().Advance(kHour);
    return result.ok() ? *result : engine::CompactionResult{};
  }

  sim::SimEnvironment env_;
};

TEST_F(LayoutTest, ClusteringRewriteMarksOutputs) {
  const auto result = Compact(/*cluster=*/true);
  ASSERT_TRUE(result.committed);
  for (const lst::DataFile& f : (*env_.catalog().LoadTable("db.t"))
                                    ->LiveFiles()) {
    EXPECT_TRUE(f.clustered) << f.path;
  }
}

TEST_F(LayoutTest, PlainRewriteLeavesOutputsUnclustered) {
  const auto result = Compact(/*cluster=*/false);
  ASSERT_TRUE(result.committed);
  for (const lst::DataFile& f : (*env_.catalog().LoadTable("db.t"))
                                    ->LiveFiles()) {
    EXPECT_FALSE(f.clustered);
  }
}

TEST_F(LayoutTest, ClusteringCostsMore) {
  // Same inputs, fresh tables: clustered rewrite pays the layout passes.
  sim::SimEnvironment env2;
  ASSERT_TRUE(env2.catalog().CreateDatabase("db").ok());
  auto table = env2.catalog().CreateTable(
      "db", "t", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
      lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
  ASSERT_TRUE(table.ok());
  engine::WriteSpec spec;
  spec.table = "db.t";
  spec.logical_bytes = 1 * kGiB;
  spec.partitions = {"m=2024-01"};
  spec.profile = engine::UntunedUserJobProfile();
  ASSERT_TRUE(env2.query_engine().ExecuteWrite(spec, 0).ok());

  engine::CompactionRequest plain;
  plain.table = "db.t";
  auto plain_result = env2.compaction_runner().Run(plain, kHour);
  ASSERT_TRUE(plain_result.ok() && plain_result->committed);

  const auto clustered_result = Compact(/*cluster=*/true);
  ASSERT_TRUE(clustered_result.committed);
  EXPECT_GT(clustered_result.gb_hours, plain_result->gb_hours * 1.3);
  EXPECT_GT(clustered_result.duration_seconds,
            plain_result->duration_seconds * 1.3);
}

TEST_F(LayoutTest, SelectiveScansSkipRowGroupsInClusteredFiles) {
  // Unclustered: selectivity does not matter (no skipping possible).
  auto full_before = env_.query_engine().ExecuteRead(
      "db.t", std::nullopt, env_.clock().Now(), 1.0);
  auto selective_before = env_.query_engine().ExecuteRead(
      "db.t", std::nullopt, env_.clock().Now() + kMinute, 0.1);
  ASSERT_TRUE(full_before.ok() && selective_before.ok());
  EXPECT_EQ(full_before->bytes_scanned, selective_before->bytes_scanned);

  ASSERT_TRUE(Compact(/*cluster=*/true).committed);

  auto full_after = env_.query_engine().ExecuteRead(
      "db.t", std::nullopt, env_.clock().Now(), 1.0);
  auto selective_after = env_.query_engine().ExecuteRead(
      "db.t", std::nullopt, env_.clock().Now() + kMinute, 0.1);
  ASSERT_TRUE(full_after.ok() && selective_after.ok());
  EXPECT_LT(selective_after->bytes_scanned, full_after->bytes_scanned / 5);
  EXPECT_LE(selective_after->total_seconds, full_after->total_seconds);
}

TEST_F(LayoutTest, StatsTrackUnclusteredBytes) {
  core::StatsCollector collector(&env_.catalog(), &env_.control_plane(),
                                 &env_.clock());
  core::Candidate candidate;
  candidate.table = "db.t";
  auto before = collector.Collect(candidate);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->unclustered_bytes, before->total_bytes);
  EXPECT_GT(core::ClusteringBenefitTrait().Compute(
                core::ObservedCandidate{candidate, *before}),
            0.0);

  ASSERT_TRUE(Compact(/*cluster=*/true).committed);
  auto after = collector.Collect(candidate);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->unclustered_bytes, 0);
}

TEST_F(LayoutTest, PolicyDrivenClusteringViaScheduler) {
  catalog::TablePolicy policy;
  policy.clustering_enabled = true;
  env_.control_plane().SetPolicy("db.t", policy);
  core::Candidate candidate;
  candidate.table = "db.t";
  const engine::CompactionRequest request = core::RequestFor(
      candidate, core::SchedulerOptions{}, &env_.control_plane());
  EXPECT_TRUE(request.cluster_output);
}

// ------------------------------------------------- workload awareness

TEST_F(LayoutTest, CatalogTracksReads) {
  EXPECT_EQ(env_.catalog().GetAccessStats("db.t").read_count, 0);
  ASSERT_TRUE(
      env_.query_engine().ExecuteRead("db.t", std::nullopt, kMinute).ok());
  ASSERT_TRUE(env_.query_engine()
                  .ExecuteRead("db.t", std::nullopt, 2 * kMinute)
                  .ok());
  const catalog::TableAccessStats stats =
      env_.catalog().GetAccessStats("db.t");
  EXPECT_EQ(stats.read_count, 2);
  EXPECT_GE(stats.last_read_at, 0);
}

TEST_F(LayoutTest, WorkloadAwareTraitPrefersHotTables) {
  // A second, identical-but-cold table.
  auto cold = env_.catalog().CreateTable(
      "db", "cold", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
      lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
  ASSERT_TRUE(cold.ok());
  engine::WriteSpec spec;
  spec.table = "db.cold";
  spec.logical_bytes = 1 * kGiB;
  spec.partitions = {"m=2024-01"};
  spec.profile = engine::UntunedUserJobProfile();
  ASSERT_TRUE(env_.query_engine().ExecuteWrite(spec, 0).ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env_.query_engine()
                    .ExecuteRead("db.t", std::nullopt, (i + 1) * kMinute)
                    .ok());
  }
  core::StatsCollector collector(&env_.catalog(), &env_.control_plane(),
                                 &env_.clock());
  core::WorkloadAwareReductionTrait trait;
  core::Candidate hot_candidate, cold_candidate;
  hot_candidate.table = "db.t";
  cold_candidate.table = "db.cold";
  auto hot_stats = collector.Collect(hot_candidate);
  auto cold_stats = collector.Collect(cold_candidate);
  ASSERT_TRUE(hot_stats.ok() && cold_stats.ok());
  EXPECT_EQ(hot_stats->custom.GetInt("read_count", -1), 20);
  const double hot = trait.Compute({hot_candidate, *hot_stats});
  const double cold_score = trait.Compute({cold_candidate, *cold_stats});
  EXPECT_GT(hot, 0);
  EXPECT_DOUBLE_EQ(cold_score, 0);  // never read -> zero priority
}

}  // namespace
}  // namespace autocomp
