// Property battery for the PolicySpec grammar and the policy-assembled
// pipeline:
//  * Parse(ToString(s)) == s for every enumerated spec and for a few
//    hundred randomized valid specs (canonicalization is lossless);
//  * malformed strings fail with the documented structured reason, never
//    a crash or a silently-default spec;
//  * every valid spec (the full pinned-table cross-product) survives a
//    fault-injected fleet replay with the invariant checker armed — no
//    policy combination can corrupt table state, even under chaos;
//  * the movement axis has its documented semantics (full rewrites move
//    at least as much as partial; merge produces at most as many files);
//  * per-table catalog overrides reach the compaction request, and
//    unparsable catalog entries are ignored rather than fatal.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/control_plane.h"
#include "core/policy.h"
#include "core/scheduler.h"
#include "engine/compaction_runner.h"
#include "engine/write_planner.h"
#include "fault/fault_injector.h"
#include "sim/driver.h"
#include "sim/fleet_driver.h"
#include "sim/presets.h"
#include "workload/tpch.h"

namespace autocomp::sim {
namespace {

using core::GranularityAxis;
using core::PickerAxis;
using core::PolicySpec;
using core::TriggerAxis;

// ------------------------------------------------------------ grammar

TEST(PolicyPropertyTest, EnumerationCountsAndUniqueness) {
  const std::vector<PolicySpec> pinned = core::EnumerateValidSpecs();
  // 5 triggers x (3 movements x 3 movement-agnostic pickers + 1
  // merge-only online-merge picker) = 50.
  EXPECT_EQ(pinned.size(), 50u);
  core::EnumerateOptions all;
  all.all_granularities = true;
  EXPECT_EQ(core::EnumerateValidSpecs(all).size(), 150u);

  std::set<std::string> keys;
  for (const PolicySpec& spec : pinned) {
    EXPECT_TRUE(spec.Validate().ok()) << spec.ToString();
    EXPECT_TRUE(keys.insert(spec.ToString()).second)
        << "duplicate canonical string " << spec.ToString();
  }
}

TEST(PolicyPropertyTest, RoundTripEveryEnumeratedSpec) {
  core::EnumerateOptions all;
  all.all_granularities = true;
  for (const PolicySpec& spec : core::EnumerateValidSpecs(all)) {
    const std::string text = spec.ToString();
    auto parsed = PolicySpec::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    EXPECT_EQ(*parsed, spec) << text;
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(PolicyPropertyTest, RoundTripRandomizedSpecs) {
  std::mt19937_64 rng(0xfeedbeefULL);
  std::uniform_int_distribution<int> trigger_pick(0, 4);
  std::uniform_int_distribution<int> granularity_pick(0, 2);
  std::uniform_int_distribution<int> movement_pick(0, 2);
  std::uniform_int_distribution<int> picker_pick(0, 3);
  // Quarters are exact in %.12g and through strtod, so the string round
  // trip is value-exact by construction.
  std::uniform_int_distribution<int> quarters(4, 192);
  std::uniform_int_distribution<int> counts(2, 64);
  for (int i = 0; i < 256; ++i) {
    PolicySpec spec;
    spec.trigger = static_cast<TriggerAxis>(trigger_pick(rng));
    switch (spec.trigger) {
      case TriggerAxis::kPeriodic:
        spec.trigger_param = 0;
        break;
      case TriggerAxis::kFileCount:
        spec.trigger_param = counts(rng);
        break;
      case TriggerAxis::kSizeRatio:
      case TriggerAxis::kStaleness:
      case TriggerAxis::kDeadline:
        spec.trigger_param = quarters(rng) / 4.0 + 1.0;
        break;
    }
    spec.granularity = static_cast<GranularityAxis>(granularity_pick(rng));
    spec.movement = static_cast<engine::RewriteMovement>(movement_pick(rng));
    spec.picker = static_cast<PickerAxis>(picker_pick(rng));
    if (spec.picker == PickerAxis::kOnlineMerge) {
      spec.movement = engine::RewriteMovement::kMerge;
      spec.picker_param = counts(rng);
    } else {
      spec.picker_param = 0;
    }
    ASSERT_TRUE(spec.Validate().ok()) << spec.ToString();

    const std::string text = spec.ToString();
    auto parsed = PolicySpec::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    EXPECT_EQ(*parsed, spec) << text;
  }
}

TEST(PolicyPropertyTest, ParseAcceptsAnyKeyOrder) {
  auto canonical = PolicySpec::Parse(
      "trigger=file-count:8;granularity=partition;movement=merge;"
      "picker=online-merge:3");
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  for (const std::string& shuffled : {
           std::string("picker=online-merge:3;movement=merge;"
                       "granularity=partition;trigger=file-count:8"),
           std::string("movement=merge;trigger=file-count:8;"
                       "picker=online-merge:3;granularity=partition"),
           std::string(";granularity=partition;;movement=merge;"
                       "trigger=file-count:8;picker=online-merge:3;"),
       }) {
    auto parsed = PolicySpec::Parse(shuffled);
    ASSERT_TRUE(parsed.ok()) << shuffled << ": " << parsed.status();
    EXPECT_EQ(*parsed, *canonical) << shuffled;
  }
}

TEST(PolicyPropertyTest, InvalidSpecsYieldStructuredErrors) {
  struct Case {
    const char* text;
    const char* axis;
    const char* reason;
  };
  const Case kCases[] = {
      {"granularity=table;movement=partial;picker=moop",  //
       "trigger", "missing-key"},
      {"trigger=periodic;movement=partial;picker=moop",  //
       "granularity", "missing-key"},
      {"trigger=periodic;granularity=table;picker=moop",  //
       "movement", "missing-key"},
      {"trigger=periodic;granularity=table;movement=partial",  //
       "picker", "missing-key"},
      {"trigger=periodic;trigger=periodic;granularity=table;"
       "movement=partial;picker=moop",
       "trigger", "duplicate-key"},
      {"trigger=bogus;granularity=table;movement=partial;picker=moop",
       "trigger", "unknown-value"},
      {"trigger=periodic;granularity=table;movement=partial;picker=moop;"
       "color=red",
       "color", "unknown-key"},
      {"trigger=file-count:abc;granularity=table;movement=partial;"
       "picker=moop",
       "trigger", "bad-param"},
      {"trigger=file-count:;granularity=table;movement=partial;picker=moop",
       "trigger", "bad-param"},
      {"trigger=file-count:1;granularity=table;movement=partial;picker=moop",
       "trigger", "param-out-of-range"},
      {"trigger=file-count:2.5;granularity=table;movement=partial;"
       "picker=moop",
       "trigger", "param-out-of-range"},
      {"trigger=size-ratio:1;granularity=table;movement=partial;picker=moop",
       "trigger", "param-out-of-range"},
      {"trigger=staleness:0;granularity=table;movement=partial;picker=moop",
       "trigger", "param-out-of-range"},
      {"trigger=periodic:5;granularity=table;movement=partial;picker=moop",
       "trigger", "param-out-of-range"},
      {"trigger=periodic;granularity=table:2;movement=partial;picker=moop",
       "granularity", "bad-param"},
      {"trigger=periodic;granularity=table;movement=partial;"
       "picker=online-merge",
       "picker", "invalid-combination"},
      {"trigger=periodic;granularity=table;movement=merge;"
       "picker=online-merge:1",
       "picker", "param-out-of-range"},
      {"trigger=periodic;granularity=table;movement=partial;picker=moop:3",
       "picker", "param-out-of-range"},
      {"nonsense", "", "unknown-key"},
  };
  for (const Case& c : kCases) {
    PolicySpec::ParseError error;
    auto parsed = PolicySpec::Parse(c.text, &error);
    ASSERT_FALSE(parsed.ok()) << c.text << " unexpectedly parsed";
    EXPECT_EQ(error.axis, c.axis) << c.text;
    EXPECT_EQ(error.reason, c.reason) << c.text;
  }
}

// ----------------------------------------------- catalog override path

TEST(PolicyPropertyTest, PerTableOverrideReachesRequest) {
  SimEnvironment env;
  catalog::TablePolicy policy;
  policy.compaction_policy =
      "trigger=periodic;granularity=table;movement=merge;picker=moop";
  env.control_plane().SetPolicy("db.t", policy);

  core::Candidate candidate;
  candidate.table = "db.t";
  core::SchedulerOptions options;
  const engine::CompactionRequest request =
      core::RequestFor(candidate, options, &env.control_plane());
  EXPECT_EQ(request.movement, engine::RewriteMovement::kMerge);
}

TEST(PolicyPropertyTest, UnparsableOverrideIsIgnoredNotFatal) {
  SimEnvironment env;
  catalog::TablePolicy policy;
  policy.compaction_policy = "movement=warp-drive";
  env.control_plane().SetPolicy("db.t", policy);

  core::Candidate candidate;
  candidate.table = "db.t";
  core::SchedulerOptions options;
  options.movement = engine::RewriteMovement::kFull;
  const engine::CompactionRequest request =
      core::RequestFor(candidate, options, &env.control_plane());
  // Falls back to the scheduler's fleet-wide movement.
  EXPECT_EQ(request.movement, engine::RewriteMovement::kFull);
}

// ------------------------------------------------- movement semantics

struct MovementTotals {
  int64_t files_rewritten = 0;
  int64_t files_produced = 0;
  int64_t commits = 0;
};

MovementTotals RunWithMovement(engine::RewriteMovement movement) {
  SimEnvironment env;
  EXPECT_TRUE(workload::SetupTpchDatabase(&env.catalog(), &env.query_engine(),
                                          "db", kGiB,
                                          engine::UntunedUserJobProfile(), 0)
                  .ok());
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 10;
  PolicySpec spec;
  spec.movement = movement;
  preset.policy = spec;
  auto service = MakeMoopService(&env, preset);
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  EXPECT_TRUE(report.ok()) << report.status();
  MovementTotals totals;
  if (!report.ok()) return totals;
  for (const auto& unit : report->executed) {
    if (!unit.result.committed) continue;
    ++totals.commits;
    totals.files_rewritten += unit.result.files_rewritten;
    totals.files_produced += unit.result.files_produced;
  }
  return totals;
}

TEST(PolicyPropertyTest, MovementAxisHasDocumentedSemantics) {
  const MovementTotals partial =
      RunWithMovement(engine::RewriteMovement::kPartial);
  const MovementTotals full = RunWithMovement(engine::RewriteMovement::kFull);
  const MovementTotals merge =
      RunWithMovement(engine::RewriteMovement::kMerge);
  ASSERT_GT(partial.commits, 0);
  ASSERT_GT(full.commits, 0);
  ASSERT_GT(merge.commits, 0);
  // Full rewrites pull every live file into the rewrite, so they can
  // never move fewer files than the small-file-only partial rewrite.
  EXPECT_GE(full.files_rewritten, partial.files_rewritten);
  // Merge coalesces each picked set into single bins, so it cannot
  // produce more output files than the size-binned partial rewrite.
  EXPECT_LE(merge.files_produced, partial.files_produced);
}

// ------------------------------------- every spec under chaos faults

TEST(PolicyPropertyTest, EveryValidSpecSurvivesFaultyReplay) {
  auto profile = fault::FaultProfileByName("chaos");
  ASSERT_TRUE(profile.ok()) << profile.status();
  const std::vector<PolicySpec> specs = core::EnumerateValidSpecs();
  ASSERT_EQ(specs.size(), 50u);
  int64_t runs_with_faults = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    FleetSimOptions options;
    options.days = 1;
    options.seed = 7;
    options.fleet.num_databases = 2;
    options.fleet.tables_per_db = 2;
    options.fleet.seed = 77;
    options.driver.sample_interval = 4 * kHour;
    options.driver.retention_interval = kDay;
    options.check_invariants = true;
    options.env.fault.enabled = true;
    options.env.fault.seed = 0x5eedfa + i;
    options.env.fault.profile = *profile;
    StrategyPreset preset;
    preset.scope = ScopeStrategy::kTable;
    preset.k = 5;
    preset.policy = specs[i];
    options.preset = preset;
    FleetSimulation simulation(std::move(options));
    auto result = simulation.Run();
    ASSERT_TRUE(result.ok())
        << specs[i].ToString() << ": " << result.status();
    EXPECT_GT(result->events_executed, 0) << specs[i].ToString();
    if (result->faults_injected > 0) ++runs_with_faults;
  }
  // The chaos profile should actually bite in most runs; if it never
  // fires the test is vacuous.
  EXPECT_GT(runs_with_faults, 25);
}

}  // namespace
}  // namespace autocomp::sim
