// Unit tests for src/catalog: catalog CRUD, CAS commits, database quotas,
// and the control plane's policies + retention service.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "lst/metadata_json.h"
#include "common/clock.h"
#include "lst/transaction.h"
#include "storage/filesystem.h"

namespace autocomp::catalog {
namespace {

lst::Schema SimpleSchema() {
  return lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}});
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : dfs_(&clock_, 1), catalog_(&clock_, &dfs_) {}

  lst::DataFile MakeAndStoreFile(const std::string& path, int64_t size) {
    EXPECT_TRUE(dfs_.CreateFile(path, size, size / 100).ok());
    lst::DataFile f;
    f.path = path;
    f.file_size_bytes = size;
    f.record_count = size / 100;
    return f;
  }

  SimulatedClock clock_{0};
  storage::DistributedFileSystem dfs_;
  Catalog catalog_;
};

TEST(SplitQualifiedNameTest, ParsesAndRejects) {
  auto ok = SplitQualifiedName("db.table");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->first, "db");
  EXPECT_EQ(ok->second, "table");
  EXPECT_FALSE(SplitQualifiedName("noseparator").ok());
  EXPECT_FALSE(SplitQualifiedName(".table").ok());
  EXPECT_FALSE(SplitQualifiedName("db.").ok());
  EXPECT_FALSE(SplitQualifiedName("a.b.c").ok());
}

TEST_F(CatalogTest, DatabaseLifecycle) {
  ASSERT_TRUE(catalog_.CreateDatabase("db1").ok());
  EXPECT_TRUE(catalog_.DatabaseExists("db1"));
  EXPECT_TRUE(catalog_.CreateDatabase("db1").IsAlreadyExists());
  EXPECT_TRUE(catalog_.CreateDatabase("bad.name").IsInvalidArgument());
  EXPECT_EQ(catalog_.ListDatabases().size(), 1u);
}

TEST_F(CatalogTest, TableLifecycle) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  auto table = catalog_.CreateTable("db", "t", SimpleSchema(),
                                    lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->name(), "db.t");
  EXPECT_TRUE(catalog_.GetTable("db.t").ok());
  EXPECT_TRUE(catalog_
                  .CreateTable("db", "t", SimpleSchema(),
                               lst::PartitionSpec::Unpartitioned())
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(catalog_
                  .CreateTable("nodb", "t", SimpleSchema(),
                               lst::PartitionSpec::Unpartitioned())
                  .status()
                  .IsNotFound());
  EXPECT_EQ(catalog_.ListTables("db").size(), 1u);
  EXPECT_EQ(catalog_.ListAllTables().size(), 1u);
  ASSERT_TRUE(catalog_.DropTable("db.t").ok());
  EXPECT_TRUE(catalog_.GetTable("db.t").status().IsNotFound());
  EXPECT_TRUE(catalog_.DropTable("db.t").IsNotFound());
}

TEST_F(CatalogTest, TableLocationLayout) {
  EXPECT_EQ(Catalog::DatabaseLocation("db"), "/data/db");
  EXPECT_EQ(Catalog::TableLocation("db.t"), "/data/db/t");
}

TEST_F(CatalogTest, MetadataCreatedAtUsesClock) {
  clock_.AdvanceTo(1234);
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  auto table = catalog_.CreateTable("db", "t", SimpleSchema(),
                                    lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  auto meta = catalog_.LoadTable("db.t");
  EXPECT_EQ((*meta)->created_at(), 1234);
}

TEST_F(CatalogTest, CommitCasDetectsStaleVersion) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_
                  .CreateTable("db", "t", SimpleSchema(),
                               lst::PartitionSpec::Unpartitioned())
                  .ok());
  auto base = catalog_.LoadTable("db.t");
  // Two successor versions built from the same base.
  lst::TableMetadata::Builder b1(**base);
  lst::TableMetadata::Builder b2(**base);
  auto m1 = b1.Build();
  auto m2 = b2.Build();
  ASSERT_TRUE(catalog_.CommitTable("db.t", (*base)->version(), *m1).ok());
  EXPECT_TRUE(catalog_.CommitTable("db.t", (*base)->version(), *m2)
                  .IsCommitConflict());
  EXPECT_EQ(catalog_.stats().commit_attempts, 2);
  EXPECT_EQ(catalog_.stats().commit_conflicts, 1);
}

TEST_F(CatalogTest, CommitRejectsNonAdvancingVersion) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_
                  .CreateTable("db", "t", SimpleSchema(),
                               lst::PartitionSpec::Unpartitioned())
                  .ok());
  auto base = catalog_.LoadTable("db.t");
  EXPECT_TRUE(catalog_.CommitTable("db.t", (*base)->version(), *base)
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, DatabaseQuotaWiredToStorage) {
  ASSERT_TRUE(catalog_.CreateDatabase("db", /*quota=*/100).ok());
  EXPECT_EQ(catalog_.DatabaseQuota("db").total_objects, 100);
  ASSERT_TRUE(dfs_.CreateFile("/data/db/t/f", 1, 1).ok());
  EXPECT_EQ(catalog_.DatabaseQuota("db").used_objects, 2);  // dir + file
}

TEST_F(CatalogTest, TransactionsWorkThroughCatalog) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  auto table = catalog_.CreateTable("db", "t", SimpleSchema(),
                                    lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  auto txn = table->NewTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Append({MakeAndStoreFile("/data/db/t/f1", 100)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto meta = catalog_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), 1);
}

// ----------------------------------------------------------- ControlPlane

class ControlPlaneTest : public CatalogTest {
 protected:
  ControlPlaneTest() : plane_(&catalog_) {}
  ControlPlane plane_;
};

TEST_F(ControlPlaneTest, PolicyDefaultsAndOverrides) {
  const TablePolicy fallback = plane_.GetPolicy("db.unknown");
  EXPECT_EQ(fallback.target_file_size_bytes, 512 * kMiB);
  EXPECT_TRUE(fallback.compaction_enabled);

  TablePolicy custom;
  custom.target_file_size_bytes = 128 * kMiB;
  custom.compaction_enabled = false;
  plane_.SetPolicy("db.t", custom);
  EXPECT_EQ(plane_.GetPolicy("db.t").target_file_size_bytes, 128 * kMiB);
  EXPECT_FALSE(plane_.GetPolicy("db.t").compaction_enabled);
}

TEST_F(ControlPlaneTest, RetentionExpiresAndDeletesOrphans) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  auto table = catalog_.CreateTable("db", "t", SimpleSchema(),
                                    lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  // Append s1, then rewrite it into c1: s1 stays on disk until retention.
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->Append({MakeAndStoreFile("/data/db/t/s1", 100)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  clock_.AdvanceTo(kHour);
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->RewriteFiles({"/data/db/t/s1"},
                                  {MakeAndStoreFile("/data/db/t/c1", 90)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_TRUE(dfs_.Exists("/data/db/t/s1"));

  TablePolicy policy;
  policy.snapshot_retention = kHour;  // everything older than 1h expires
  plane_.SetPolicy("db.t", policy);
  clock_.AdvanceTo(10 * kHour);
  auto report = plane_.RunRetentionFor("db.t");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->snapshots_expired, 1);
  EXPECT_EQ(report->files_deleted, 1);
  EXPECT_EQ(report->bytes_deleted, 100);
  EXPECT_FALSE(dfs_.Exists("/data/db/t/s1"));
  EXPECT_TRUE(dfs_.Exists("/data/db/t/c1"));
}

TEST_F(ControlPlaneTest, RetentionServiceSweepsAllTables) {
  ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
  for (int i = 0; i < 3; ++i) {
    auto table =
        catalog_.CreateTable("db", "t" + std::to_string(i), SimpleSchema(),
                             lst::PartitionSpec::Unpartitioned());
    ASSERT_TRUE(table.ok());
  }
  const RetentionReport report = plane_.RunRetentionService();
  EXPECT_EQ(report.tables_processed, 3);
  EXPECT_EQ(report.snapshots_expired, 0);
}


// ------------------------------------------------ metadata persistence

TEST(PersistedCatalogTest, CommitsWriteMetadataObjects) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  CatalogOptions options;
  options.persist_metadata = true;
  options.metadata_versions_retained = 2;
  Catalog catalog(&clock, &dfs, options);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable("db", "t", SimpleSchema(),
                                   lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  // Table creation already persisted v1's metadata.json.
  EXPECT_TRUE(dfs.Exists("/data/db/t/metadata/v000001.metadata.json"));

  // Each commit adds a metadata version + a manifest object; the §2
  // cause-iv mechanism - metadata itself grows the object count.
  const int64_t before = dfs.AggregateStats().file_count;
  lst::DataFile f;
  f.path = "/data/db/t/f1";
  f.file_size_bytes = 100;
  f.record_count = 1;
  ASSERT_TRUE(dfs.CreateFile(f.path, f.file_size_bytes, 1).ok());
  auto txn = table->NewTransaction();
  ASSERT_TRUE(txn->Append({f}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  // +1 data file, +1 metadata.json, +1 manifest.
  EXPECT_EQ(dfs.AggregateStats().file_count, before + 3);
  EXPECT_TRUE(dfs.Exists("/data/db/t/metadata/v000002.metadata.json"));
}

TEST(PersistedCatalogTest, OldMetadataVersionsExpire) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  CatalogOptions options;
  options.persist_metadata = true;
  options.metadata_versions_retained = 2;
  Catalog catalog(&clock, &dfs, options);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable("db", "t", SimpleSchema(),
                                   lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 5; ++i) {
    lst::DataFile f;
    f.path = "/data/db/t/f" + std::to_string(i);
    f.file_size_bytes = 10;
    f.record_count = 1;
    ASSERT_TRUE(dfs.CreateFile(f.path, 10, 1).ok());
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->Append({f}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Version is now 6; only the last 2 metadata.json objects remain.
  EXPECT_FALSE(dfs.Exists("/data/db/t/metadata/v000001.metadata.json"));
  EXPECT_FALSE(dfs.Exists("/data/db/t/metadata/v000004.metadata.json"));
  EXPECT_TRUE(dfs.Exists("/data/db/t/metadata/v000005.metadata.json"));
  EXPECT_TRUE(dfs.Exists("/data/db/t/metadata/v000006.metadata.json"));
}

TEST(PersistedCatalogTest, PersistedDocumentRoundTrips) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  CatalogOptions options;
  options.persist_metadata = true;
  Catalog catalog(&clock, &dfs, options);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable("db", "t", SimpleSchema(),
                                   lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  // The persisted JSON parses back into equivalent metadata.
  auto meta = catalog.LoadTable("db.t");
  ASSERT_TRUE(meta.ok());
  const std::string json = lst::TableMetadataToJson(**meta);
  auto restored = lst::TableMetadataFromJson(json);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->version(), (*meta)->version());
}

}  // namespace
}  // namespace autocomp::catalog
