// Tests for the JSON document model and the table-metadata
// serialization (round-trips, storage footprint, expiry).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/random.h"
#include "lst/metadata_json.h"
#include "lst/table.h"
#include "lst/transaction.h"
#include "storage/filesystem.h"

namespace autocomp {
namespace {

// ------------------------------------------------------------------ JSON

TEST(JsonTest, ScalarsRoundTrip) {
  for (const std::string doc :
       {"null", "true", "false", "42", "-7", "3.5", "\"hi\""}) {
    auto parsed = JsonValue::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    EXPECT_EQ(parsed->Dump(), doc);
  }
}

TEST(JsonTest, IntegersPreservedExactly) {
  const int64_t big = 9007199254740993LL;  // not representable as double
  auto parsed = JsonValue::Parse(std::to_string(big));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), JsonValue::Type::kInt);
  EXPECT_EQ(parsed->as_int(), big);
}

TEST(JsonTest, DoublesKeepDoubleness) {
  auto parsed = JsonValue::Parse("2.0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type(), JsonValue::Type::kDouble);
  // Dump must re-parse as a double, not an int.
  auto reparsed = JsonValue::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->type(), JsonValue::Type::kDouble);
}

TEST(JsonTest, StringEscapes) {
  JsonValue v(std::string("a\"b\\c\nd\te\x01"));
  const std::string dumped = v.Dump();
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), v.as_string());
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  auto parsed = JsonValue::Parse("\"caf\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "caf\xc3\xa9");
}

TEST(JsonTest, NestedStructures) {
  const std::string doc =
      R"({"a":[1,2,{"b":true}],"c":{"d":null,"e":[[]]}})";
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 3u);
  EXPECT_TRUE(parsed->Get("a")[2].Get("b").as_bool());
  EXPECT_TRUE(parsed->Get("c").Get("d").is_null());
  EXPECT_EQ(parsed->Dump(), doc);  // members already sorted here
}

TEST(JsonTest, WhitespaceTolerant) {
  auto parsed = JsonValue::Parse("  {\n \"k\" :\t[ 1 , 2 ]\n}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("k").size(), 2u);
}

TEST(JsonTest, MalformedInputsRejected) {
  for (const std::string doc :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1}trailing", "[1 2]", "{'a':1}", "nul"}) {
    EXPECT_FALSE(JsonValue::Parse(doc).ok()) << doc;
  }
}

TEST(JsonTest, CheckedAccessors) {
  auto parsed = JsonValue::Parse(R"({"n":1,"s":"x"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Get("n").AsInt().ok());
  EXPECT_FALSE(parsed->Get("n").AsString().ok());
  EXPECT_FALSE(parsed->Get("s").AsInt().ok());
  EXPECT_FALSE(parsed->Get("missing").AsBool().ok());
}

TEST(JsonTest, DeterministicDump) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  EXPECT_EQ(obj.Dump(), R"({"apple":2,"zebra":1})");
}

// ------------------------------------------------- metadata round trip

class MetadataJsonTest : public ::testing::Test {
 protected:
  MetadataJsonTest() : dfs_(&clock_, 1), catalog_(&clock_, &dfs_) {
    EXPECT_TRUE(catalog_.CreateDatabase("db").ok());
  }

  lst::TableMetadataPtr BuildRichMetadata() {
    auto table = catalog_.CreateTable(
        "db", "t",
        lst::Schema(0, {{1, "id", lst::FieldType::kInt64, true},
                        {2, "d", lst::FieldType::kDate, true},
                        {3, "s", lst::FieldType::kString, false}}),
        lst::PartitionSpec(1, {{2, lst::Transform::kMonth, "m"}}));
    EXPECT_TRUE(table.ok());
    {
      auto txn = table->NewTransaction();
      lst::DataFile f1{"/data/db/t/a", "m=2024-01",
                       lst::FileContent::kData, 100, 10};
      lst::DataFile f2{"/data/db/t/b", "m=2024-02",
                       lst::FileContent::kPositionDeletes, 20, 2};
      f2.clustered = true;
      EXPECT_TRUE(txn->Append({f1, f2}).ok());
      EXPECT_TRUE(txn->Commit().ok());
    }
    clock_.Advance(kHour);
    {
      auto txn = table->NewTransaction();
      lst::DataFile merged{"/data/db/t/c", "m=2024-01",
                           lst::FileContent::kData, 90, 10};
      EXPECT_TRUE(txn->RewriteFiles({"/data/db/t/a"}, {merged}).ok());
      EXPECT_TRUE(txn->Commit().ok());
    }
    auto meta = catalog_.LoadTable("db.t");
    EXPECT_TRUE(meta.ok());
    return *meta;
  }

  SimulatedClock clock_{1000};
  storage::DistributedFileSystem dfs_;
  catalog::Catalog catalog_;
};

TEST_F(MetadataJsonTest, RoundTripPreservesEverything) {
  lst::TableMetadataPtr original = BuildRichMetadata();
  const std::string json = lst::TableMetadataToJson(*original);
  auto restored = lst::TableMetadataFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const lst::TableMetadata& r = **restored;

  EXPECT_EQ(r.name(), original->name());
  EXPECT_EQ(r.location(), original->location());
  EXPECT_EQ(r.version(), original->version());
  EXPECT_EQ(r.created_at(), original->created_at());
  EXPECT_EQ(r.last_updated_at(), original->last_updated_at());
  EXPECT_EQ(r.current_snapshot_id(), original->current_snapshot_id());
  EXPECT_EQ(r.next_snapshot_id(), original->next_snapshot_id());
  EXPECT_EQ(r.next_manifest_id(), original->next_manifest_id());
  EXPECT_EQ(r.next_sequence_number(), original->next_sequence_number());
  EXPECT_EQ(r.schema().fields().size(), original->schema().fields().size());
  EXPECT_EQ(r.partition_spec().ToString(),
            original->partition_spec().ToString());
  EXPECT_EQ(r.snapshots().size(), original->snapshots().size());
  EXPECT_EQ(r.live_file_count(), original->live_file_count());
  EXPECT_EQ(r.live_bytes(), original->live_bytes());

  // File-level details survive.
  const auto files = r.LiveFiles();
  ASSERT_EQ(files.size(), 2u);
  bool saw_delete = false, saw_clustered = false;
  for (const lst::DataFile& f : files) {
    if (f.content == lst::FileContent::kPositionDeletes) saw_delete = true;
    if (f.clustered) saw_clustered = true;
    EXPECT_GT(f.added_snapshot_id, 0);
  }
  EXPECT_TRUE(saw_delete);
  EXPECT_TRUE(saw_clustered);

  // Conflict-validation state survives (removed paths, touched parts).
  const lst::Snapshot* snap = r.current_snapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_NE(snap->removed_paths, nullptr);
  EXPECT_EQ(snap->removed_paths->count("/data/db/t/a"), 1u);
  EXPECT_EQ(snap->touched_partitions.count("m=2024-01"), 1u);

  // Serialization is stable: dump(restore(dump(x))) == dump(x).
  EXPECT_EQ(lst::TableMetadataToJson(r), json);
}

TEST_F(MetadataJsonTest, RestoredMetadataSupportsNewCommits) {
  lst::TableMetadataPtr original = BuildRichMetadata();
  auto restored =
      lst::TableMetadataFromJson(lst::TableMetadataToJson(*original));
  ASSERT_TRUE(restored.ok());
  // Swap the restored metadata in and keep committing.
  ASSERT_TRUE(catalog_
                  .CommitTable("db.t", original->version(),
                               lst::TableMetadata::Builder(**restored)
                                   .Build()
                                   .value())
                  .ok());
  auto table = catalog_.GetTable("db.t");
  auto txn = table->NewTransaction();
  ASSERT_TRUE(
      txn->Append({lst::DataFile{"/data/db/t/d", "m=2024-03",
                                 lst::FileContent::kData, 5, 1}})
          .ok());
  auto committed = txn->Commit();
  ASSERT_TRUE(committed.ok());
  // New ids continue from the restored counters (no collisions).
  const auto files = (*catalog_.LoadTable("db.t"))->LiveFiles();
  std::set<int64_t> snapshot_ids;
  for (const lst::Snapshot& s : (*catalog_.LoadTable("db.t"))->snapshots()) {
    EXPECT_TRUE(snapshot_ids.insert(s.snapshot_id).second);
  }
  EXPECT_EQ(files.size(), 3u);
}

TEST_F(MetadataJsonTest, MalformedDocumentsRejected) {
  EXPECT_FALSE(lst::TableMetadataFromJson("{}").ok());
  EXPECT_FALSE(lst::TableMetadataFromJson("not json").ok());
  EXPECT_FALSE(
      lst::TableMetadataFromJson(R"({"format-version":99})").ok());
}

TEST_F(MetadataJsonTest, FootprintPersistsAndCountsObjects) {
  lst::TableMetadataPtr meta = BuildRichMetadata();
  const int64_t before = dfs_.AggregateStats().file_count;
  auto created = lst::PersistMetadataFootprint(&dfs_, *meta);
  ASSERT_TRUE(created.ok());
  EXPECT_GT(*created, 0);
  EXPECT_EQ(dfs_.AggregateStats().file_count, before + *created);
  // Idempotent: persisting the same version again creates nothing.
  auto again = lst::PersistMetadataFootprint(&dfs_, *meta);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
  // The metadata objects land under the table's metadata/ directory and
  // count toward namespace quotas (the §2 cause-iv mechanism).
  const auto listed = dfs_.ListFiles(meta->location() + "/metadata");
  EXPECT_EQ(static_cast<int64_t>(listed.size()), *created);
}

TEST_F(MetadataJsonTest, FootprintExpiryRemovesOldVersions) {
  lst::TableMetadataPtr meta = BuildRichMetadata();
  ASSERT_TRUE(lst::PersistMetadataFootprint(&dfs_, *meta).ok());
  // Persist a successor version too.
  auto next = lst::TableMetadata::Builder(*meta).Build();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(lst::PersistMetadataFootprint(&dfs_, **next).ok());

  auto removed =
      lst::ExpireMetadataFootprint(&dfs_, **next, meta->version());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);  // only the older vNNN.metadata.json
  // The newest version file must survive.
  char name[64];
  std::snprintf(name, sizeof(name), "/metadata/v%06lld.metadata.json",
                static_cast<long long>((*next)->version()));
  EXPECT_TRUE(dfs_.Exists((*next)->location() + name));
}


// ------------------------------------------- randomized round-trips

/// Builds a random JSON tree (bounded depth/size), deterministically.
JsonValue RandomJson(Rng* rng, int depth) {
  const double pick = rng->NextDouble();
  if (depth <= 0 || pick < 0.35) {
    switch (rng->UniformInt(0, 3)) {
      case 0:
        return JsonValue(rng->UniformInt(-1'000'000'000, 1'000'000'000));
      case 1:
        return JsonValue(rng->Bernoulli(0.5));
      case 2: {
        std::string s;
        const int len = static_cast<int>(rng->UniformInt(0, 12));
        for (int i = 0; i < len; ++i) {
          // Mix printable ASCII with characters that need escaping.
          const char alphabet[] = "ab\\\"z/\n\t 0",
                     *end = alphabet + sizeof(alphabet) - 1;
          s.push_back(alphabet[rng->UniformInt(0, end - alphabet - 1)]);
        }
        return JsonValue(std::move(s));
      }
      default:
        return JsonValue();
    }
  }
  if (pick < 0.7) {
    JsonValue arr = JsonValue::Array();
    const int n = static_cast<int>(rng->UniformInt(0, 5));
    for (int i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth - 1));
    return arr;
  }
  JsonValue obj = JsonValue::Object();
  const int n = static_cast<int>(rng->UniformInt(0, 5));
  for (int i = 0; i < n; ++i) {
    obj.Set("k" + std::to_string(rng->UniformInt(0, 9)),
            RandomJson(rng, depth - 1));
  }
  return obj;
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripTest, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  const JsonValue original = RandomJson(&rng, 4);
  const std::string dumped = original.Dump();
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << dumped << ": " << parsed.status();
  // Dump is canonical: round-tripping reproduces it byte for byte.
  EXPECT_EQ(parsed->Dump(), dumped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Range(uint64_t{500}, uint64_t{530}));

}  // namespace
}  // namespace autocomp
