// Oracle cross-check for the Bigtable-style merge model
// (core/merge_policy.h): the memoized offline optimum is validated
// against an independent brute-force search (no memo, different
// recursion shape) over randomized small traces, and every built-in
// online policy is checked to be legal, deterministic, and within a
// finite competitive ratio >= 1 of the oracle — the guarantees the
// sweep bench's per-archetype ratio report relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include "core/merge_policy.h"

namespace autocomp::core {
namespace {

/// Independent reference oracle: plain depth-first search over (next
/// arrival, stack) states with no memoization and suffix merges tried
/// in the opposite order from the production implementation. Only
/// viable for tiny traces, which is the point — it shares no code or
/// search order with OfflineOptimalMergeCost.
int64_t BruteForceOptimal(const std::vector<int64_t>& arrivals, size_t index,
                          std::vector<int64_t> stack, size_t k) {
  if (index == arrivals.size()) {
    if (stack.size() <= k) return 0;
    // Still over budget at end of trace: must keep merging.
  } else if (stack.size() <= k) {
    // May take the next arrival without merging...
    std::vector<int64_t> next = stack;
    next.push_back(arrivals[index]);
    int64_t best = BruteForceOptimal(arrivals, index + 1, std::move(next), k);
    // ...or voluntarily merge any newest suffix first.
    for (size_t m = stack.size(); m >= 2; --m) {
      std::vector<int64_t> merged(stack.begin(), stack.end() - m);
      int64_t cost = std::accumulate(stack.end() - m, stack.end(),
                                     static_cast<int64_t>(0));
      merged.push_back(cost);
      best = std::min(best, cost + BruteForceOptimal(arrivals, index,
                                                     std::move(merged), k));
    }
    return best;
  }
  // Over budget: a merge is forced before anything else happens.
  int64_t best = std::numeric_limits<int64_t>::max();
  for (size_t m = 2; m <= stack.size(); ++m) {
    std::vector<int64_t> merged(stack.begin(), stack.end() - m);
    int64_t cost = std::accumulate(stack.end() - m, stack.end(),
                                   static_cast<int64_t>(0));
    merged.push_back(cost);
    best = std::min(best, cost + BruteForceOptimal(arrivals, index,
                                                   std::move(merged), k));
  }
  return best;
}

int64_t BruteForceOptimal(const std::vector<int64_t>& arrivals, size_t k) {
  return BruteForceOptimal(arrivals, 0, {}, k);
}

TEST(PolicyOracleTest, OracleMatchesBruteForceOnRandomTraces) {
  std::mt19937_64 rng(0x0c0ffeeULL);
  std::uniform_int_distribution<int> len(1, 8);
  std::uniform_int_distribution<int64_t> size(1, 100);
  for (const size_t k : {2u, 3u, 4u}) {
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<int64_t> arrivals(len(rng));
      for (int64_t& a : arrivals) a = size(rng);
      EXPECT_EQ(OfflineOptimalMergeCost(arrivals, k),
                BruteForceOptimal(arrivals, k))
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(PolicyOracleTest, OracleExploitsVoluntaryEarlyMerges) {
  // The canonical trap: with k=2 and arrivals {1, 1, 100}, waiting for
  // the overflow forces the 100-run into a merge (cost >= 101 however
  // the suffix is chosen), while voluntarily merging the two unit runs
  // *before* the big arrival costs 2. A forced-merge-only "oracle"
  // returns 101 here — this test pins the difference.
  const std::vector<int64_t> arrivals = {1, 1, 100};
  EXPECT_EQ(OfflineOptimalMergeCost(arrivals, 2), 2);
  EXPECT_EQ(BruteForceOptimal(arrivals, 2), 2);
}

TEST(PolicyOracleTest, TracesWithinBudgetCostNothing) {
  EXPECT_EQ(OfflineOptimalMergeCost({}, 2), 0);
  EXPECT_EQ(OfflineOptimalMergeCost({5}, 2), 0);
  EXPECT_EQ(OfflineOptimalMergeCost({5, 7}, 2), 0);
  EXPECT_EQ(OfflineOptimalMergeCost({5, 7, 9, 11}, 4), 0);
}

TEST(PolicyOracleTest, OnlinePoliciesAreLegalAndNeverBeatOracle) {
  std::mt19937_64 rng(0xba5eba11ULL);
  std::uniform_int_distribution<int> len(1, 10);
  std::uniform_int_distribution<int64_t> size(1, 1000);
  const auto policies = BuiltinMergePolicies();
  ASSERT_GE(policies.size(), 3u);
  for (const auto& policy : policies) {
    for (const size_t k : {2u, 3u, 4u}) {
      for (int trial = 0; trial < 25; ++trial) {
        std::vector<int64_t> arrivals(len(rng));
        for (int64_t& a : arrivals) a = size(rng);
        const MergeCompetitiveRatio r =
            CompetitiveRatioFor(arrivals, k, *policy);
        EXPECT_EQ(r.online_cost, SimulateOnlineMergeCost(arrivals, k, *policy))
            << policy->name();
        EXPECT_EQ(r.offline_cost, OfflineOptimalMergeCost(arrivals, k))
            << policy->name();
        // Online schedules are a subset of the oracle's schedule space.
        EXPECT_GE(r.online_cost, r.offline_cost) << policy->name();
        EXPECT_GE(r.ratio, 1.0) << policy->name();
        EXPECT_TRUE(std::isfinite(r.ratio)) << policy->name();
        // Determinism: the same trace prices identically on replay.
        EXPECT_EQ(r.online_cost,
                  SimulateOnlineMergeCost(arrivals, k, *policy))
            << policy->name();
      }
    }
  }
}

TEST(PolicyOracleTest, MergeCountsStayInLegalRange) {
  std::mt19937_64 rng(0x5ca1ab1eULL);
  std::uniform_int_distribution<int64_t> size(1, 1000);
  for (const auto& policy : BuiltinMergePolicies()) {
    for (const size_t k : {2u, 3u, 5u}) {
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<int64_t> stack(k + 1);
        for (int64_t& s : stack) s = size(rng);
        const size_t count = policy->MergeCount(stack, k);
        EXPECT_GE(count, 2u) << policy->name();
        EXPECT_LE(count, stack.size()) << policy->name();
      }
    }
  }
}

TEST(PolicyOracleTest, PolicyCostOrderingOnAdversarialTrace) {
  // Repeated unit arrivals: lazy re-pays the merged prefix every step,
  // merge-all re-pays everything every step, geometric keeps the stack
  // geometric. All must still sit at or above the oracle.
  const std::vector<int64_t> arrivals(12, 1);
  const size_t k = 3;
  const int64_t offline = OfflineOptimalMergeCost(arrivals, k);
  for (const auto& policy : BuiltinMergePolicies()) {
    EXPECT_GE(SimulateOnlineMergeCost(arrivals, k, *policy), offline)
        << policy->name();
  }
}

TEST(PolicyOracleTest, MergePressureScoreBehaviour) {
  // A stack within budget has nothing to merge.
  EXPECT_EQ(MergePressureScore({100, 200}, 4), 0.0);
  EXPECT_EQ(MergePressureScore({}, 2), 0.0);
  // An overflowing stack has positive pressure...
  const double small = MergePressureScore(
      {1 << 20, 1 << 20, 1 << 20, 1 << 20, 1 << 20}, 4);
  EXPECT_GT(small, 0.0);
  // ...and eliminating the same file count for more bytes written is
  // lower pressure (score is files eliminated per GiB rewritten).
  const double big = MergePressureScore(
      {100 << 20, 100 << 20, 100 << 20, 100 << 20, 100 << 20}, 4);
  EXPECT_GT(big, 0.0);
  EXPECT_LT(big, small);
}

}  // namespace
}  // namespace autocomp::core
