// Fault-injection fuzz tests: random seeded fault profiles and schedules
// replayed through the shard-parallel fleet simulation with the
// invariant checker armed after every epoch. The bar is threefold:
//  * no fault mix may break a safety invariant (live-file loss or
//    duplication, quota/object-accounting drift, lineage cycles);
//  * a replay with the same seeds is bit-identical, metric for metric;
//  * sequential and sharded runs agree under faults (NFR2 extends to the
//    injected-failure paths, not just the happy path).
// Labeled "concurrency" as well so TSan builds cover injector arming
// from parallel shard advancement.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"

namespace autocomp::sim {
namespace {

FleetSimOptions SmallFaultyFleet(uint64_t seed) {
  FleetSimOptions options;
  options.days = 2;
  options.seed = seed;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 3;
  options.fleet.new_tables_per_day = 2;
  // Low NameNode capacity so organic epoch-load timeouts mix with the
  // injected ones.
  options.env.namenode.rpc_capacity_per_hour = 200;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  options.check_invariants = true;
  options.env.fault.enabled = true;
  return options;
}

/// Draws a random fault profile from `rng` — every site armed, with
/// probabilities low enough that most operations still succeed (the
/// workload-failure paths are exercised, not saturated).
fault::FaultProfile RandomProfile(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  fault::FaultProfile profile;
  profile.sites[fault::kSiteStorageOpen] = {
      {0.08 * u(*rng), fault::FaultKind::kTimeout}};
  profile.sites[fault::kSiteStorageCreate] = {
      {0.004 * u(*rng), fault::FaultKind::kQuotaExceeded}};
  profile.sites[fault::kSiteLstCommit] = {
      {0.10 * u(*rng), fault::FaultKind::kCasRaceConflict},
      {0.01 * u(*rng), fault::FaultKind::kValidationAbort},
      {0.01 * u(*rng), fault::FaultKind::kDisjointRewriteAbort}};
  profile.sites[fault::kSiteEngineRunner] = {
      {0.05 * u(*rng), fault::FaultKind::kRunnerCrash}};
  profile.sites[fault::kSiteCatalogCommitEvent] = {
      {0.02 * u(*rng), fault::FaultKind::kDropEvent},
      {0.02 * u(*rng), fault::FaultKind::kDuplicateEvent}};
  return profile;
}

FleetSimResult RunOrDie(FleetSimOptions options) {
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return std::move(*result);
}

TEST(FaultFuzzTest, RandomProfilesHoldInvariantsAndReplayBitIdentical) {
  for (const uint64_t fuzz_seed : {11ull, 29ull}) {
    std::mt19937_64 rng(fuzz_seed);
    FleetSimOptions options = SmallFaultyFleet(7);
    options.sharded = false;
    options.env.fault.seed = fuzz_seed * 1000003;
    options.env.fault.profile = RandomProfile(&rng);

    FleetSimOptions replay = options;  // identical seeds and profile
    const FleetSimResult first = RunOrDie(std::move(options));
    const FleetSimResult again = RunOrDie(std::move(replay));
    EXPECT_GT(first.faults_injected, 0)
        << "fuzz_seed " << fuzz_seed << " drew a vacuous profile";
    EXPECT_EQ(first.faults_injected, again.faults_injected);
    EXPECT_EQ(first.events_executed, again.events_executed);
    EXPECT_EQ(first.total_files, again.total_files);
    std::string why;
    EXPECT_TRUE(first.metrics.Equals(again.metrics, &why))
        << "replay diverged (fuzz_seed " << fuzz_seed << "): " << why;
  }
}

TEST(FaultFuzzTest, InjectionsAreBitIdenticalAcrossShardsAndPools) {
  std::mt19937_64 rng(4242);
  const fault::FaultProfile profile = RandomProfile(&rng);

  FleetSimOptions seq_options = SmallFaultyFleet(7);
  seq_options.sharded = false;
  seq_options.env.fault.seed = 77;
  seq_options.env.fault.profile = profile;
  const FleetSimResult seq = RunOrDie(std::move(seq_options));
  ASSERT_GT(seq.faults_injected, 0);

  for (const int shards : {1, 4, 8}) {
    for (const int workers : {2, 4}) {
      ThreadPool pool(workers);
      FleetSimOptions options = SmallFaultyFleet(7);
      options.sharded = true;
      options.shards = shards;
      options.pool = &pool;
      options.env.fault.seed = 77;
      options.env.fault.profile = profile;
      const FleetSimResult result = RunOrDie(std::move(options));
      EXPECT_EQ(seq.faults_injected, result.faults_injected)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(seq.total_files, result.total_files);
      std::string why;
      EXPECT_TRUE(seq.metrics.Equals(result.metrics, &why))
          << "shards=" << shards << " workers=" << workers << ": " << why;
    }
  }
}

TEST(FaultFuzzTest, DifferentFaultSeedsInjectDifferently) {
  std::mt19937_64 rng(99);
  const fault::FaultProfile profile = RandomProfile(&rng);
  int64_t injected_a = 0;
  int64_t injected_b = 0;
  for (int round = 0; round < 2; ++round) {
    FleetSimOptions options = SmallFaultyFleet(7);
    options.sharded = false;
    options.env.fault.seed = round == 0 ? 1 : 2;
    options.env.fault.profile = profile;
    const FleetSimResult result = RunOrDie(std::move(options));
    (round == 0 ? injected_a : injected_b) = result.faults_injected;
  }
  // Not a hard law (two seeds could tie), but with hundreds of draws a
  // collision would itself be suspicious — treat as a regression signal.
  EXPECT_NE(injected_a, injected_b);
}

TEST(FaultFuzzTest, RandomSchedulesHoldInvariants) {
  // Scripted (non-probabilistic) injections: random (site, hit, kind)
  // tuples, including terminal kinds that force abandonment paths.
  const struct {
    const char* site;
    fault::FaultKind kind;
  } kMenu[] = {
      {fault::kSiteStorageOpen, fault::FaultKind::kTimeout},
      {fault::kSiteStorageCreate, fault::FaultKind::kQuotaExceeded},
      {fault::kSiteLstCommit, fault::FaultKind::kCasRaceConflict},
      {fault::kSiteLstCommit, fault::FaultKind::kValidationAbort},
      {fault::kSiteEngineRunner, fault::FaultKind::kRunnerCrash},
      {fault::kSiteCatalogCommitEvent, fault::FaultKind::kDropEvent},
      {fault::kSiteCatalogCommitEvent, fault::FaultKind::kDuplicateEvent},
  };
  for (const uint64_t fuzz_seed : {3ull, 17ull}) {
    std::mt19937_64 rng(fuzz_seed);
    std::uniform_int_distribution<int> pick(0, 6);
    std::uniform_int_distribution<uint64_t> hit(1, 200);
    FleetSimOptions options = SmallFaultyFleet(7);
    options.sharded = false;
    for (int i = 0; i < 12; ++i) {
      const auto& entry = kMenu[pick(rng)];
      options.env.fault.schedule.Add(entry.site, hit(rng), entry.kind);
    }
    const FleetSimResult result = RunOrDie(std::move(options));
    EXPECT_GT(result.events_executed, 0);
  }
}

TEST(FaultFuzzTest, ArmedButEmptyInjectorMatchesDisabledRun) {
  // The zero-fault parity contract the bench overhead guard relies on:
  // an enabled injector with no profile and no schedule must not perturb
  // the simulation in any observable way.
  FleetSimOptions off = SmallFaultyFleet(7);
  off.sharded = false;
  off.env.fault.enabled = false;
  const FleetSimResult disabled = RunOrDie(std::move(off));

  FleetSimOptions armed = SmallFaultyFleet(7);
  armed.sharded = false;  // fault.enabled = true, empty profile/schedule
  const FleetSimResult idle = RunOrDie(std::move(armed));

  EXPECT_EQ(idle.faults_injected, 0);
  EXPECT_EQ(disabled.total_files, idle.total_files);
  EXPECT_EQ(disabled.events_executed, idle.events_executed);
  std::string why;
  EXPECT_TRUE(disabled.metrics.Equals(idle.metrics, &why)) << why;
}

}  // namespace
}  // namespace autocomp::sim
