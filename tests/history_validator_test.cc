// Tests for the snapshot-history consistency validator: clean histories
// pass, synthetically corrupted ones are caught.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "lst/history_validator.h"
#include "lst/table.h"
#include "lst/transaction.h"
#include "storage/filesystem.h"

namespace autocomp::lst {
namespace {

class HistoryValidatorTest : public ::testing::Test {
 protected:
  HistoryValidatorTest() : dfs_(&clock_, 1), catalog_(&clock_, &dfs_) {
    EXPECT_TRUE(catalog_.CreateDatabase("db").ok());
    auto table = catalog_.CreateTable(
        "db", "t", Schema(0, {{1, "d", FieldType::kDate, true}}),
        PartitionSpec(1, {{1, Transform::kMonth, "m"}}));
    EXPECT_TRUE(table.ok());
  }

  Table GetTable() { return *catalog_.GetTable("db.t"); }

  DataFile MakeFile(const std::string& path, int64_t size = 100) {
    DataFile f;
    f.path = path;
    f.partition = "m=2024-01";
    f.file_size_bytes = size;
    f.record_count = 1;
    return f;
  }

  void BuildHistory() {
    Table table = GetTable();
    {
      auto txn = table.NewTransaction();
      ASSERT_TRUE(txn->Append({MakeFile("/a"), MakeFile("/b")}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    clock_.Advance(kHour);
    {
      auto txn = table.NewTransaction();
      ASSERT_TRUE(txn->RewriteFiles({"/a", "/b"}, {MakeFile("/c")}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    clock_.Advance(kHour);
    {
      auto txn = table.NewTransaction();
      ASSERT_TRUE(txn->Append({MakeFile("/d")}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }

  TableMetadataPtr Meta() { return *catalog_.LoadTable("db.t"); }

  SimulatedClock clock_{0};
  storage::DistributedFileSystem dfs_;
  catalog::Catalog catalog_;
};

TEST_F(HistoryValidatorTest, EmptyTableIsConsistent) {
  EXPECT_TRUE(CheckHistory(*Meta()).ok());
}

TEST_F(HistoryValidatorTest, RealHistoryIsConsistent) {
  BuildHistory();
  const auto violations = ValidateHistory(*Meta());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().message);
  EXPECT_TRUE(CheckHistory(*Meta()).ok());
}

TEST_F(HistoryValidatorTest, HistoryAfterExpiryIsConsistent) {
  BuildHistory();
  clock_.Advance(10 * kHour);
  auto expired = ExpireSnapshots(&catalog_, "db.t", &clock_,
                                 /*older_than=*/clock_.Now() - kHour);
  ASSERT_TRUE(expired.ok());
  ASSERT_GT(expired->expired_snapshots, 0);
  EXPECT_TRUE(CheckHistory(*Meta()).ok());
}

// --- corruption cases: build broken metadata through the Builder and
// assert the validator flags each class of damage.

TEST_F(HistoryValidatorTest, DetectsBrokenParentChain) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  std::vector<Snapshot> snapshots = meta->snapshots();
  snapshots.back().parent_snapshot_id = 999;  // corrupt
  TableMetadata::Builder builder(*meta);
  Snapshot head = snapshots.back();
  snapshots.pop_back();
  builder.SetSnapshots(std::move(snapshots));
  builder.AddSnapshot(std::move(head));
  auto corrupted = builder.Build();
  ASSERT_TRUE(corrupted.ok());
  const auto violations = ValidateHistory(**corrupted);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("parent"), std::string::npos);
}

TEST_F(HistoryValidatorTest, DetectsNonMonotonicSequence) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  std::vector<Snapshot> snapshots = meta->snapshots();
  snapshots.back().sequence_number = 1;  // duplicate of the first commit
  TableMetadata::Builder builder(*meta);
  Snapshot head = snapshots.back();
  snapshots.pop_back();
  builder.SetSnapshots(std::move(snapshots));
  builder.AddSnapshot(std::move(head));
  auto corrupted = builder.Build();
  ASSERT_TRUE(corrupted.ok());
  EXPECT_FALSE(CheckHistory(**corrupted).ok());
}

TEST_F(HistoryValidatorTest, DetectsFabricatedRemoval) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  std::vector<Snapshot> snapshots = meta->snapshots();
  // Claim the head removed a path that never existed.
  auto removed = std::make_shared<std::set<std::string>>();
  removed->insert("/ghost");
  snapshots.back().removed_paths = removed;
  TableMetadata::Builder builder(*meta);
  Snapshot head = snapshots.back();
  snapshots.pop_back();
  builder.SetSnapshots(std::move(snapshots));
  builder.AddSnapshot(std::move(head));
  auto corrupted = builder.Build();
  ASSERT_TRUE(corrupted.ok());
  const auto violations = ValidateHistory(**corrupted);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const HistoryViolation& v : violations) {
    if (v.message.find("was not live") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HistoryValidatorTest, DetectsWrongSummaryCounters) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  std::vector<Snapshot> snapshots = meta->snapshots();
  snapshots.back().added_files = 42;  // lie
  TableMetadata::Builder builder(*meta);
  Snapshot head = snapshots.back();
  snapshots.pop_back();
  builder.SetSnapshots(std::move(snapshots));
  builder.AddSnapshot(std::move(head));
  auto corrupted = builder.Build();
  ASSERT_TRUE(corrupted.ok());
  const auto violations = ValidateHistory(**corrupted);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("added_files"),
            std::string::npos);
}

TEST_F(HistoryValidatorTest, DetectsDuplicateLivePath) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  // Fabricate a head snapshot whose manifests list one path twice.
  TableMetadata::Builder builder(*meta);
  Snapshot bad;
  bad.snapshot_id = builder.AllocateSnapshotId();
  bad.parent_snapshot_id = meta->current_snapshot_id();
  bad.sequence_number = builder.AllocateSequenceNumber();
  bad.timestamp = clock_.Now();
  bad.operation = SnapshotOperation::kAppend;
  DataFile dup = MakeFile("/dup");
  dup.added_snapshot_id = bad.snapshot_id;
  bad.manifests.push_back(std::make_shared<const Manifest>(
      builder.AllocateManifestId(), std::vector<DataFile>{dup, dup}));
  bad.added_files = 2;
  builder.AddSnapshot(std::move(bad));
  auto corrupted = builder.Build();
  ASSERT_TRUE(corrupted.ok());
  const auto violations = ValidateHistory(**corrupted);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("twice"), std::string::npos);
}

TEST_F(HistoryValidatorTest, CheckHistoryMessageSummarizes) {
  BuildHistory();
  TableMetadataPtr meta = Meta();
  std::vector<Snapshot> snapshots = meta->snapshots();
  snapshots.back().added_files = 42;
  TableMetadata::Builder builder(*meta);
  Snapshot head = snapshots.back();
  snapshots.pop_back();
  builder.SetSnapshots(std::move(snapshots));
  builder.AddSnapshot(std::move(head));
  auto corrupted = builder.Build();
  const Status st = CheckHistory(**corrupted);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("db.t"), std::string::npos);
}

}  // namespace
}  // namespace autocomp::lst
