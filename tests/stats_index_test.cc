// IncrementalStatsIndex: O(delta) maintenance must be observationally
// identical to rescanning metadata (NFR2). Scripted single-thread
// operation sequences, histogram queries vs brute force, rebuild
// triggers (expiry, drops, stale pins), a randomized multi-threaded
// property suite with per-commit index-vs-rescan cross-checks, and an
// end-to-end determinism test over all four generators × three
// collector modes.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/ranking.h"
#include "core/stats_index.h"
#include "core/traits.h"
#include "lst/table.h"
#include "lst/transaction.h"
#include "storage/filesystem.h"

namespace autocomp {
namespace {

lst::Schema TestSchema() {
  return lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}});
}

lst::PartitionSpec TestSpec() {
  return lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}});
}

// Harness: a catalog plus every collector flavor over one shared index.
struct IndexHarness {
  SimulatedClock clock{0};
  storage::DistributedFileSystem dfs{&clock, 1};
  catalog::Catalog catalog{&clock, &dfs};
  catalog::ControlPlane control_plane{&catalog};
  std::shared_ptr<core::IncrementalStatsIndex> index;
  std::unique_ptr<core::StatsCollector> rescan;
  std::unique_ptr<core::IndexedStatsCollector> indexed;

  IndexHarness()
      : index(std::make_shared<core::IncrementalStatsIndex>(&catalog)),
        rescan(std::make_unique<core::StatsCollector>(&catalog, &control_plane,
                                                      &clock)),
        indexed(std::make_unique<core::IndexedStatsCollector>(
            &catalog, &control_plane, &clock, index, /*cross_check=*/true)) {}

  // Both paths must agree field for field, custom bag included.
  void ExpectAgreement(const core::Candidate& candidate) {
    auto a = indexed->Collect(candidate);  // cross-check mode self-verifies
    ASSERT_TRUE(a.ok()) << a.status();
    auto b = rescan->Collect(candidate);
    ASSERT_TRUE(b.ok()) << b.status();
    std::string why;
    EXPECT_TRUE(core::StatsEquivalent(*a, *b, &why))
        << candidate.id() << ": " << why;
  }

  // Checks every scope of one table: whole table, each live partition,
  // and the snapshot scope at the current replace watermark.
  void ExpectAllScopesAgree(const std::string& table) {
    core::Candidate whole;
    whole.table = table;
    ExpectAgreement(whole);

    auto meta = catalog.LoadTable(table);
    ASSERT_TRUE(meta.ok());
    for (const std::string& partition : (*meta)->LivePartitions()) {
      core::Candidate pc;
      pc.table = table;
      pc.scope = core::CandidateScope::kPartition;
      pc.partition = partition;
      ExpectAgreement(pc);
    }

    int64_t last_replace = 0;
    for (const lst::Snapshot& snap : (*meta)->snapshots()) {
      if (snap.operation == lst::SnapshotOperation::kReplace &&
          snap.snapshot_id > last_replace) {
        last_replace = snap.snapshot_id;
      }
    }
    if (last_replace > 0) {
      core::Candidate sc;
      sc.table = table;
      sc.scope = core::CandidateScope::kSnapshot;
      sc.after_snapshot_id = last_replace;
      ExpectAgreement(sc);
    }
  }
};

lst::DataFile MakeFile(const std::string& table_path, int64_t* counter,
                       const std::string& partition, int64_t size) {
  lst::DataFile f;
  f.path = table_path + "/" + partition + "/f" + std::to_string((*counter)++);
  f.partition = partition;
  f.file_size_bytes = size;
  f.record_count = 1;
  return f;
}

// ------------------------------------------- Scripted operation sequence

TEST(StatsIndexTest, ScriptedOperationsMatchRescanAfterEveryCommit) {
  IndexHarness h;
  ASSERT_TRUE(h.catalog.CreateDatabase("db").ok());
  auto table = h.catalog.CreateTable("db", "t", TestSchema(), TestSpec());
  ASSERT_TRUE(table.ok());
  int64_t counter = 0;

  // Empty table: index must agree before any snapshot exists.
  h.ExpectAllScopesAgree("db.t");

  // Append into two partitions.
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Append({MakeFile("/data/db/t", &counter, "m=2024-01", 5),
                             MakeFile("/data/db/t", &counter, "m=2024-01", 9),
                             MakeFile("/data/db/t", &counter, "m=2024-02", 64)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  h.ExpectAllScopesAgree("db.t");

  // Overwrite: replace one file, add one.
  {
    auto meta = table->Metadata();
    ASSERT_TRUE(meta.ok());
    const std::string victim = (*meta)->LiveFiles().front().path;
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        txn->Overwrite({victim},
                       {MakeFile("/data/db/t", &counter, "m=2024-01", 7)})
            .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  h.ExpectAllScopesAgree("db.t");

  // Rewrite (compaction): sets the replace watermark; the fresh set
  // empties and refills on the next append.
  {
    auto meta = table->Metadata();
    ASSERT_TRUE(meta.ok());
    std::vector<std::string> inputs;
    for (const lst::DataFile& f : (*meta)->LiveFiles(std::string("m=2024-01"))) {
      inputs.push_back(f.path);
    }
    ASSERT_FALSE(inputs.empty());
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        txn->RewriteFiles(inputs,
                          {MakeFile("/data/db/t", &counter, "m=2024-01", 16)})
            .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  h.ExpectAllScopesAgree("db.t");

  // Post-compaction appends are the snapshot-scope population.
  {
    h.clock.Advance(kMinute);
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Append({MakeFile("/data/db/t", &counter, "m=2024-02", 3),
                             MakeFile("/data/db/t", &counter, "m=2024-03", 2)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  h.ExpectAllScopesAgree("db.t");

  // Delete files (a partition may disappear entirely).
  {
    auto meta = table->Metadata();
    ASSERT_TRUE(meta.ok());
    std::vector<std::string> victims;
    for (const lst::DataFile& f : (*meta)->LiveFiles(std::string("m=2024-03"))) {
      victims.push_back(f.path);
    }
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->DeleteFiles(victims).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  h.ExpectAllScopesAgree("db.t");

  // Snapshot expiry commits without a delta; the index must rebuild and
  // still agree (watermark recomputation included).
  {
    h.clock.Advance(kDay);
    const int64_t rebuilds_before = h.index->rebuilds();
    auto expired = lst::ExpireSnapshots(&h.catalog, "db.t", &h.clock,
                                        h.clock.Now() - kHour, 1);
    ASSERT_TRUE(expired.ok()) << expired.status();
    ASSERT_GT(expired->expired_snapshots, 0);
    h.ExpectAllScopesAgree("db.t");
    EXPECT_GT(h.index->rebuilds(), rebuilds_before);
  }

  // Steady state: repeated collections are index hits, not fallbacks.
  const int64_t hits_before = h.indexed->index_hits();
  h.ExpectAllScopesAgree("db.t");
  EXPECT_GT(h.indexed->index_hits(), hits_before);
  EXPECT_GT(h.index->deltas_applied(), 0);
}

// ---------------------------------------------------- Query-level checks

TEST(StatsIndexTest, SmallFilesBelowMatchesBruteForce) {
  IndexHarness h;
  ASSERT_TRUE(h.catalog.CreateDatabase("db").ok());
  auto table = h.catalog.CreateTable("db", "t", TestSchema(), TestSpec());
  ASSERT_TRUE(table.ok());
  Rng rng(42);
  int64_t counter = 0;
  std::vector<lst::DataFile> batch;
  for (int i = 0; i < 200; ++i) {
    // Sizes straddling bucket boundaries, including exact powers of two.
    const int64_t size = rng.Bernoulli(0.3)
                             ? int64_t{1} << rng.UniformInt(0, 30)
                             : rng.UniformInt(1, 512 * kMiB);
    batch.push_back(MakeFile("/data/db/t", &counter,
                             "m=2024-" + std::to_string(1 + i % 4), size));
  }
  auto txn = table->NewTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Append(batch).ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto meta = h.catalog.LoadTable("db.t");
  ASSERT_TRUE(meta.ok());
  std::vector<int64_t> thresholds = {0,       1,         2,          1024,
                                     1 << 20, 64 * kMiB, 512 * kMiB, 1 << 30};
  for (int i = 0; i < 32; ++i) thresholds.push_back(rng.UniformInt(1, kGiB));
  for (const int64_t threshold : thresholds) {
    auto summary = h.index->SmallFilesBelow("db.t", *meta, threshold);
    ASSERT_TRUE(summary.has_value());
    int64_t count = 0, bytes = 0;
    (*meta)->ForEachLiveFile([&](const lst::DataFile& f) {
      if (f.file_size_bytes < threshold) {
        ++count;
        bytes += f.file_size_bytes;
      }
    });
    EXPECT_EQ(summary->count, count) << "threshold " << threshold;
    EXPECT_EQ(summary->bytes, bytes) << "threshold " << threshold;
  }
}

TEST(StatsIndexTest, LivePartitionsAndWatermarkMatchMetadata) {
  IndexHarness h;
  ASSERT_TRUE(h.catalog.CreateDatabase("db").ok());
  auto table = h.catalog.CreateTable("db", "t", TestSchema(), TestSpec());
  ASSERT_TRUE(table.ok());
  int64_t counter = 0;
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Append({MakeFile("/data/db/t", &counter, "m=2024-03", 4),
                             MakeFile("/data/db/t", &counter, "m=2024-01", 8)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto meta = h.catalog.LoadTable("db.t");
  ASSERT_TRUE(meta.ok());
  auto partitions = h.index->LivePartitions("db.t", *meta);
  ASSERT_TRUE(partitions.has_value());
  EXPECT_EQ(*partitions, (*meta)->LivePartitions());

  auto watermark = h.index->LastReplaceSnapshotId("db.t", *meta);
  ASSERT_TRUE(watermark.has_value());
  EXPECT_EQ(*watermark, 0);

  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    std::vector<std::string> inputs;
    for (const lst::DataFile& f : (*meta)->LiveFiles(std::string("m=2024-01"))) {
      inputs.push_back(f.path);
    }
    ASSERT_TRUE(
        txn->RewriteFiles(inputs,
                          {MakeFile("/data/db/t", &counter, "m=2024-01", 12)})
            .ok());
    auto committed = txn->Commit();
    ASSERT_TRUE(committed.ok());
    meta = h.catalog.LoadTable("db.t");
    ASSERT_TRUE(meta.ok());
    watermark = h.index->LastReplaceSnapshotId("db.t", *meta);
    ASSERT_TRUE(watermark.has_value());
    EXPECT_EQ(*watermark, committed->snapshot_id);
  }
}

TEST(StatsIndexTest, StalePinnedMetadataFallsBackNotLies) {
  IndexHarness h;
  ASSERT_TRUE(h.catalog.CreateDatabase("db").ok());
  auto table = h.catalog.CreateTable("db", "t", TestSchema(), TestSpec());
  ASSERT_TRUE(table.ok());
  int64_t counter = 0;
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        txn->Append({MakeFile("/data/db/t", &counter, "m=2024-01", 5)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto old_meta = h.catalog.LoadTable("db.t");
  ASSERT_TRUE(old_meta.ok());
  core::Candidate candidate;
  candidate.table = "db.t";
  // Materialize the entry at the old version, then advance the table.
  ASSERT_TRUE(h.index->TryCollect(candidate, *old_meta).has_value());
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        txn->Append({MakeFile("/data/db/t", &counter, "m=2024-01", 6)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The entry is now newer than the stale pin: the index must refuse
  // rather than answer with the wrong version's aggregates.
  EXPECT_FALSE(h.index->TryCollect(candidate, *old_meta).has_value());
  EXPECT_FALSE(h.index->LivePartitions("db.t", *old_meta).has_value());
  // A fresh pin is served again.
  auto meta = h.catalog.LoadTable("db.t");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(h.index->TryCollect(candidate, *meta).has_value());
}

TEST(StatsIndexTest, DropTableEvictsEntry) {
  IndexHarness h;
  ASSERT_TRUE(h.catalog.CreateDatabase("db").ok());
  auto table = h.catalog.CreateTable("db", "t", TestSchema(), TestSpec());
  ASSERT_TRUE(table.ok());
  int64_t counter = 0;
  auto txn = table->NewTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      txn->Append({MakeFile("/data/db/t", &counter, "m=2024-01", 5)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  core::Candidate candidate;
  candidate.table = "db.t";
  auto meta = h.catalog.LoadTable("db.t");
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(h.index->TryCollect(candidate, *meta).has_value());
  EXPECT_EQ(h.index->FleetTotals().tables, 1);
  ASSERT_TRUE(h.catalog.DropTable("db.t").ok());
  EXPECT_EQ(h.index->FleetTotals().tables, 0);
}

// ------------------------------------------- Randomized concurrent suite

class StatsIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsIndexPropertyTest, ConcurrentMixMatchesRescanAfterEveryCommit) {
  IndexHarness h;
  constexpr int kThreads = 3;
  constexpr int kStepsPerThread = 40;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(h.catalog.CreateDatabase("db" + std::to_string(t)).ok());
  }
  ASSERT_TRUE(h.catalog.CreateDatabase("shared").ok());
  ASSERT_TRUE(
      h.catalog.CreateTable("shared", "hammer", TestSchema(), TestSpec())
          .ok());

  // Each worker owns one table (exclusive writer, so its per-commit
  // cross-checks are race-free) and also hammers the shared table with
  // CommitWithRetries appends to exercise delta application under CAS
  // races and out-of-order listener delivery.
  std::vector<std::thread> workers;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, &failures, t, seed = GetParam()]() {
      Rng rng(seed * 97 + static_cast<uint64_t>(t));
      const std::string db = "db" + std::to_string(t);
      auto table = h.catalog.CreateTable(db, "t", TestSchema(), TestSpec());
      if (!table.ok()) {
        failures[t] = "create: " + table.status().ToString();
        return;
      }
      const std::string qualified = db + ".t";
      const std::string location = "/data/" + db + "/t";
      int64_t counter = 0;
      std::set<std::string> live;
      for (int step = 0; step < kStepsPerThread; ++step) {
        const double pick = rng.NextDouble();
        auto txn = table->NewTransaction();
        if (!txn.ok()) {
          failures[t] = "txn: " + txn.status().ToString();
          return;
        }
        Status staged = Status::OK();
        std::vector<lst::DataFile> added;
        std::vector<std::string> removed;
        if (pick < 0.45 || live.empty()) {
          const int n = static_cast<int>(rng.UniformInt(1, 4));
          for (int i = 0; i < n; ++i) {
            added.push_back(MakeFile(
                location, &counter,
                "m=2024-0" + std::to_string(1 + rng.UniformInt(0, 2)),
                rng.UniformInt(1, 4096)));
          }
          staged = txn->Append(added);
        } else {
          for (const std::string& path : live) {
            if (rng.Bernoulli(0.4)) removed.push_back(path);
            if (removed.size() >= 3) break;
          }
          if (removed.empty()) removed.push_back(*live.begin());
          if (pick < 0.65) {
            added.push_back(
                MakeFile(location, &counter, "m=2024-01",
                         rng.UniformInt(1, 4096)));
            staged = txn->Overwrite(removed, added);
          } else if (pick < 0.85) {
            // Rewrite wants same-partition inputs; restage as a
            // single-victim replace to stay valid.
            removed.resize(1);
            added.push_back(
                MakeFile(location, &counter, "m=2024-02",
                         rng.UniformInt(1, 4096)));
            staged = txn->RewriteFiles(removed, added);
          } else {
            staged = txn->DeleteFiles(removed);
          }
        }
        if (!staged.ok()) {
          failures[t] = "stage: " + staged.ToString();
          return;
        }
        auto committed = txn->Commit();
        if (!committed.ok()) {
          failures[t] = "commit: " + committed.status().ToString();
          return;
        }
        for (const std::string& path : removed) live.erase(path);
        for (const lst::DataFile& f : added) live.insert(f.path);

        // Cross-check mode re-collects via rescan on every index hit and
        // fails loudly on divergence.
        core::Candidate candidate;
        candidate.table = qualified;
        auto stats = h.indexed->Collect(candidate);
        if (!stats.ok()) {
          failures[t] = "collect: " + stats.status().ToString();
          return;
        }
        if (stats->file_count != static_cast<int64_t>(live.size())) {
          failures[t] = "live-set drift at step " + std::to_string(step);
          return;
        }

        // Contend on the shared table.
        auto hammer = h.catalog.GetTable("shared.hammer");
        if (!hammer.ok()) continue;
        auto hammer_txn = hammer->NewTransaction();
        if (!hammer_txn.ok()) continue;
        std::vector<lst::DataFile> hfiles = {
            MakeFile("/data/shared/hammer", &counter,
                     "m=2024-0" + std::to_string(1 + t), t * 1000 + step + 1)};
        hfiles.back().path += "-w" + std::to_string(t);
        if (hammer_txn->Append(hfiles).ok()) {
          (void)hammer_txn->CommitWithRetries(10);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "worker " << t;
  }

  // Quiesced: every table (shared hammer included) agrees across scopes.
  for (const std::string& name : h.catalog.ListAllTables()) {
    h.ExpectAllScopesAgree(name);
  }
  EXPECT_GT(h.index->deltas_applied(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsIndexPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

// -------------------------------------------- End-to-end determinism

// Small fragmented fleet with some compacted (replace-snapshot) tables so
// the snapshot scope has non-trivial watermarks.
void BuildSmallFleet(catalog::Catalog* catalog, Rng* rng) {
  ASSERT_TRUE(catalog->CreateDatabase("db").ok());
  for (int t = 0; t < 24; ++t) {
    const std::string name = "t" + std::to_string(t);
    auto table = catalog->CreateTable("db", name, TestSchema(), TestSpec());
    ASSERT_TRUE(table.ok());
    int64_t counter = 0;
    const std::string location = "/data/db/" + name;
    std::vector<lst::DataFile> batch;
    const int files = static_cast<int>(rng->UniformInt(5, 30));
    const int partitions = static_cast<int>(rng->UniformInt(1, 4));
    for (int f = 0; f < files; ++f) {
      batch.push_back(MakeFile(location, &counter,
                               "m=2024-0" + std::to_string(1 + f % partitions),
                               rng->UniformInt(1, 32) * kMiB));
    }
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Append(batch).ok());
    ASSERT_TRUE(txn->Commit().ok());
    if (t % 3 == 0) {
      // Compact one partition, then append fresh files over it.
      auto meta = table->Metadata();
      ASSERT_TRUE(meta.ok());
      std::vector<std::string> inputs;
      for (const lst::DataFile& f : (*meta)->LiveFiles(std::string("m=2024-01"))) {
        inputs.push_back(f.path);
      }
      auto rewrite = table->NewTransaction();
      ASSERT_TRUE(rewrite.ok());
      ASSERT_TRUE(rewrite
                      ->RewriteFiles(inputs, {MakeFile(location, &counter,
                                                       "m=2024-01", 256 * kMiB)})
                      .ok());
      ASSERT_TRUE(rewrite->Commit().ok());
      auto fresh = table->NewTransaction();
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(fresh
                      ->Append({MakeFile(location, &counter, "m=2024-01", kMiB),
                                MakeFile(location, &counter, "m=2024-02",
                                         2 * kMiB)})
                      .ok());
      ASSERT_TRUE(fresh->Commit().ok());
    }
  }
}

core::AutoCompPipeline MakeDecidePipeline(
    catalog::Catalog* catalog, const Clock* clock,
    std::shared_ptr<core::CandidateGenerator> generator,
    std::shared_ptr<core::StatsCollector> collector) {
  core::AutoCompPipeline::Stages stages;
  stages.generator = std::move(generator);
  stages.collector = std::move(collector);
  stages.traits = {std::make_shared<core::FileCountReductionTrait>(),
                   std::make_shared<core::FileEntropyTrait>(),
                   std::make_shared<core::ComputeCostTrait>(24.0, 1e12)};
  stages.ranker = std::make_shared<core::MoopRanker>(
      std::vector<core::MoopRanker::Objective>{
          {"file_count_reduction", 0.7, false},
          {"compute_cost_gbhr", 0.3, true}});
  stages.selector = std::make_shared<core::FixedKSelector>(100);
  stages.scheduler = nullptr;
  return core::AutoCompPipeline(std::move(stages), catalog, clock);
}

TEST(StatsIndexDeterminismTest, AllGeneratorsBitIdenticalAcrossCollectors) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog catalog(&clock, &dfs);
  catalog::ControlPlane control_plane(&catalog);
  Rng rng(11);
  BuildSmallFleet(&catalog, &rng);

  enum class Mode { kRescan, kIndexed, kIndexedCache };
  struct Baseline {
    std::vector<core::ScoredCandidate> ranked;
  };

  for (int g = 0; g < 4; ++g) {
    std::optional<Baseline> baseline;
    for (const Mode mode :
         {Mode::kRescan, Mode::kIndexed, Mode::kIndexedCache}) {
      std::shared_ptr<core::IncrementalStatsIndex> index;
      std::shared_ptr<core::StatsCollector> collector;
      if (mode != Mode::kRescan) {
        index = std::make_shared<core::IncrementalStatsIndex>(&catalog);
        collector = std::make_shared<core::IndexedStatsCollector>(
            &catalog, &control_plane, &clock, index);
        if (mode == Mode::kIndexedCache) {
          collector = std::make_shared<core::CachingStatsCollector>(
              &catalog, &control_plane, &clock, collector,
              core::CachingStatsCollector::kDefaultCapacity);
        }
      } else {
        collector = std::make_shared<core::StatsCollector>(
            &catalog, &control_plane, &clock);
      }
      std::shared_ptr<core::CandidateGenerator> generator;
      switch (g) {
        case 0:
          generator = std::make_shared<core::TableScopeGenerator>(index);
          break;
        case 1:
          generator = std::make_shared<core::PartitionScopeGenerator>(index);
          break;
        case 2:
          generator = std::make_shared<core::HybridScopeGenerator>(index);
          break;
        default:
          generator = std::make_shared<core::SnapshotScopeGenerator>(index);
          break;
      }
      core::AutoCompPipeline pipeline =
          MakeDecidePipeline(&catalog, &clock, generator, collector);
      // Two runs: the second exercises warm index/cache paths.
      for (int run = 0; run < 2; ++run) {
        auto report = pipeline.RunOnce();
        ASSERT_TRUE(report.ok()) << report.status();
        if (!baseline) {
          baseline = Baseline{report->ranked};
          continue;
        }
        ASSERT_EQ(report->ranked.size(), baseline->ranked.size())
            << "generator " << g;
        for (size_t i = 0; i < report->ranked.size(); ++i) {
          const core::ScoredCandidate& got = report->ranked[i];
          const core::ScoredCandidate& want = baseline->ranked[i];
          EXPECT_EQ(got.candidate().id(), want.candidate().id());
          // Bit-identical scores and traits, not just approximately equal:
          // the indexed path must reproduce the rescan's float reductions.
          EXPECT_EQ(got.score, want.score) << got.candidate().id();
          EXPECT_EQ(got.traited.traits, want.traited.traits)
              << got.candidate().id();
          std::string why;
          EXPECT_TRUE(core::StatsEquivalent(got.traited.observed.stats,
                                            want.traited.observed.stats, &why))
              << got.candidate().id() << ": " << why;
        }
      }
    }
  }
}

}  // namespace
}  // namespace autocomp
