// Bit-identity and bounded-residency tests for the fleet lane evictor
// (DESIGN.md §10). The contract under test: dehydrating lanes into
// checkpoints at ANY budget — even "evict everything, every hour" — and
// restoring them on their next due event must not change a single
// sample of the merged metrics, any total, or the injected-fault
// stream, across seeds, shard counts and pool sizes. The runs span
// enough days that 3-day snapshot retention actually expires lineage
// (with a persisted metadata footprint, so expiry is storage-visible
// and a mistimed deferred tick would diverge the RPC stream).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "common/blob.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "lst/metadata_blob.h"
#include "lst/metadata_json.h"
#include "lst/transaction.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"
#include "storage/filesystem.h"

namespace autocomp::sim {
namespace {

FleetSimOptions EvictableFleet(uint64_t seed) {
  FleetSimOptions options;
  // 4 days > the fleet's 3-day snapshot retention: day-0 lineage heads
  // expire mid-run, so the evictor's effective-retention wake is load
  // bearing, not vacuous.
  options.days = 4;
  options.seed = seed;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 3;
  options.fleet.new_tables_per_day = 2;
  // Low capacity so fleet-wide load crosses it and the epoch-load
  // timeout path fires — the cross-lane coupling eviction must not skew.
  options.env.namenode.rpc_capacity_per_hour = 200;
  // Persisted metadata makes snapshot expiry visible in storage (object
  // creates/deletes): any divergence in deferred retention ticks shows
  // up in total_files and the RPC tallies, not just catalog internals.
  options.env.catalog.persist_metadata = true;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kHour;
  return options;
}

FleetSimResult RunOrDie(FleetSimOptions options) {
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return std::move(*result);
}

void ExpectSameReplay(const FleetSimResult& a, const FleetSimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.events_executed, b.events_executed) << label;
  EXPECT_EQ(a.total_files, b.total_files) << label;
  EXPECT_EQ(a.open_calls, b.open_calls) << label;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
  std::string why;
  EXPECT_TRUE(a.metrics.Equals(b.metrics, &why)) << label << ": " << why;
}

// The headline matrix: evict-everything-every-hour under a budget of
// one resident lane vs never-evict, across seeds × shards × pools.
TEST(FleetEvictionTest, AggressiveEvictionIsBitIdenticalAcrossMatrix) {
  for (const uint64_t seed : {7ull, 11ull}) {
    FleetSimOptions baseline = EvictableFleet(seed);
    baseline.sharded = false;
    const FleetSimResult reference = RunOrDie(std::move(baseline));

    for (const int shards : {1, 4}) {
      for (const int workers : {0, 2}) {
        std::unique_ptr<ThreadPool> pool;
        if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
        FleetSimOptions options = EvictableFleet(seed);
        options.shards = shards;
        options.pool = pool.get();
        options.max_resident_lanes = 1;
        options.evict_after_idle_hours = 1;
        const FleetSimResult evicting = RunOrDie(std::move(options));
        const std::string label = "seed=" + std::to_string(seed) +
                                  " shards=" + std::to_string(shards) +
                                  " workers=" + std::to_string(workers);
        EXPECT_GT(evicting.lanes_evicted, 0) << label;
        EXPECT_GT(evicting.lanes_restored, 0) << label;
        EXPECT_GT(evicting.checkpoint_bytes, 0) << label;
        ExpectSameReplay(reference, evicting, label);
      }
    }
  }
}

// The eager hydrate-everything/advance-everything mode is the original
// bit-identity oracle; the evicting lazy path must match it too.
TEST(FleetEvictionTest, EvictionMatchesEagerReference) {
  FleetSimOptions eager = EvictableFleet(7);
  eager.lane_mode = LaneMode::kAdvanceAll;
  eager.sharded = false;
  const FleetSimResult reference = RunOrDie(std::move(eager));

  FleetSimOptions options = EvictableFleet(7);
  options.max_resident_lanes = 2;
  const FleetSimResult evicting = RunOrDie(std::move(options));
  EXPECT_GT(evicting.lanes_evicted, 0);
  ExpectSameReplay(reference, evicting, "evict-vs-eager");
}

// Idle-rule-only configuration (no budget): lanes dehydrate one idle
// hour after their last real work and restore on their next event.
TEST(FleetEvictionTest, IdleRuleAloneEvictsAndStaysBitIdentical) {
  FleetSimOptions baseline = EvictableFleet(11);
  baseline.sharded = false;
  const FleetSimResult reference = RunOrDie(std::move(baseline));

  FleetSimOptions options = EvictableFleet(11);
  options.sharded = false;
  options.evict_after_idle_hours = 1;
  const FleetSimResult evicting = RunOrDie(std::move(options));
  EXPECT_GT(evicting.lanes_evicted, 0);
  // Residency accounting counts restores: every restore re-enters the
  // resident set, so restores + hydrations bound the eviction count.
  EXPECT_GE(evicting.lanes_restored + evicting.lanes_hydrated,
            evicting.lanes_evicted);
  ExpectSameReplay(reference, evicting, "idle-only");
}

// Fault injection draws from counter-based per-lane streams that are
// part of the checkpoint; eviction must not shift a single injection.
TEST(FleetEvictionTest, EvictionUnderFaultsIsBitIdentical) {
  const auto faulty = [](uint64_t seed) {
    FleetSimOptions options = EvictableFleet(seed);
    options.env.fault.enabled = true;
    options.env.fault.seed = seed * 1000003;
    options.env.fault.profile.sites[fault::kSiteStorageOpen] = {
        {0.05, fault::FaultKind::kTimeout}};
    options.env.fault.profile.sites[fault::kSiteLstCommit] = {
        {0.05, fault::FaultKind::kCasRaceConflict}};
    // Expiry commits draw from their own site: deferred retention ticks
    // must not shift a single maintenance-path injection either.
    options.env.fault.profile.sites[fault::kSiteRetentionExpire] = {
        {0.05, fault::FaultKind::kCasRaceConflict}};
    return options;
  };
  FleetSimOptions baseline = faulty(7);
  baseline.sharded = false;
  const FleetSimResult reference = RunOrDie(std::move(baseline));
  EXPECT_GT(reference.faults_injected, 0) << "vacuous fault profile";

  FleetSimOptions options = faulty(7);
  options.shards = 4;
  options.max_resident_lanes = 1;
  options.evict_after_idle_hours = 1;
  const FleetSimResult evicting = RunOrDie(std::move(options));
  EXPECT_GT(evicting.lanes_evicted, 0);
  ExpectSameReplay(reference, evicting, "faulty-evict");
}

// The budget is enforced between epochs: lanes due in the same hour are
// all resident during that epoch, but the post-epoch eviction pass
// drains the resident set back to the budget. The residency hook must
// observe that drain (counting both restores and evictions — the
// satellite fix: a restore re-enters the resident set exactly like a
// first hydration, only the first hydration grows lanes_hydrated).
TEST(FleetEvictionTest, ResidencyHookObservesDrainToBudget) {
  FleetSimOptions options = EvictableFleet(7);
  options.sharded = false;
  options.max_resident_lanes = 2;
  bool exceeded = false;
  bool drained_after_exceeding = false;
  options.on_lane_residency = [&](const std::string&, int64_t resident,
                                  int64_t) {
    if (resident > 2) exceeded = true;
    if (exceeded && resident <= 2) drained_after_exceeding = true;
  };
  const FleetSimResult result = RunOrDie(std::move(options));
  EXPECT_GT(result.lanes_evicted, 0);
  EXPECT_GT(result.lanes_restored, 0);
  EXPECT_TRUE(exceeded) << "budget never stressed; test is vacuous";
  EXPECT_TRUE(drained_after_exceeding);
}

// ------------------------------------------------ checkpoint codec

lst::Schema EvictSchema() {
  return lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}});
}

// The binary metadata codec must round-trip the full snapshot/manifest/
// file tree exactly; the JSON serializer is the equality oracle.
TEST(MetadataBlobTest, RoundTripsLineageExactly) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog catalog(&clock, &dfs);
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  auto table = catalog.CreateTable("db", "t", EvictSchema(),
                                   lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  const auto store_file = [&](const std::string& path, int64_t size) {
    EXPECT_TRUE(dfs.CreateFile(path, size, size / 100).ok());
    lst::DataFile f;
    f.path = path;
    f.file_size_bytes = size;
    f.record_count = size / 100;
    return f;
  };
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->Append({store_file("/data/db/t/f1", 100),
                             store_file("/data/db/t/f2", 200)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  clock.AdvanceTo(kHour);
  {
    auto txn = table->NewTransaction();
    ASSERT_TRUE(txn->RewriteFiles({"/data/db/t/f1", "/data/db/t/f2"},
                                  {store_file("/data/db/t/c1", 290)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto metadata = catalog.LoadTable("db.t");
  ASSERT_TRUE(metadata.ok());

  common::BlobWriter writer;
  lst::TableMetadataToBlob(**metadata, &writer);
  const std::string blob = writer.Take();
  common::BlobReader reader(blob);
  auto restored = lst::TableMetadataFromBlob(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(lst::TableMetadataToJson(**metadata),
            lst::TableMetadataToJson(**restored));
}

}  // namespace
}  // namespace autocomp::sim
