// Unit tests for src/common: Status/Result, Config, Rng, histograms,
// units, clock, logging.

#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/config.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/units.h"

namespace autocomp {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoryPredicatesMatch) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::CommitConflict("x").IsCommitConflict());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(a.message(), b.message());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCommitConflict), "CommitConflict");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  AUTOCOMP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  AUTOCOMP_RETURN_NOT_OK(fail ? Status::Internal("x") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_TRUE(UseReturnNotOk(true).IsInternal());
}

// ---------------------------------------------------------------- Config

TEST(ConfigTest, TypedAccessorsWithDefaults) {
  Config c;
  c.SetInt("k", 10).SetDouble("w", 0.7).SetBool("on", true).Set("s", "hi");
  EXPECT_EQ(c.GetInt("k", -1), 10);
  EXPECT_DOUBLE_EQ(c.GetDouble("w", 0), 0.7);
  EXPECT_TRUE(c.GetBool("on", false));
  EXPECT_EQ(c.GetString("s"), "hi");
  EXPECT_EQ(c.GetInt("absent", 99), 99);
  EXPECT_FALSE(c.Has("absent"));
}

TEST(ConfigTest, MalformedValuesFallBack) {
  Config c;
  c.Set("k", "not-a-number");
  EXPECT_EQ(c.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(c.GetDouble("k", 1.5), 1.5);
  EXPECT_FALSE(c.GetBool("k", false));
}

TEST(ConfigTest, RequireAccessors) {
  Config c;
  c.SetInt("k", 5);
  ASSERT_TRUE(c.RequireInt("k").ok());
  EXPECT_EQ(c.RequireInt("k").value(), 5);
  EXPECT_TRUE(c.RequireInt("missing").status().IsNotFound());
  c.Set("bad", "xyz");
  EXPECT_TRUE(c.RequireDouble("bad").status().IsInvalidArgument());
}

TEST(ConfigTest, OverridesLayer) {
  Config base;
  base.SetInt("a", 1).SetInt("b", 2);
  Config overrides;
  overrides.SetInt("b", 20).SetInt("c", 30);
  Config merged = base.WithOverrides(overrides);
  EXPECT_EQ(merged.GetInt("a", 0), 1);
  EXPECT_EQ(merged.GetInt("b", 0), 20);
  EXPECT_EQ(merged.GetInt("c", 0), 30);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, PoissonMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(7);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(7);
  int64_t rank0 = 0, rank9 = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t r = rng.Zipf(10, 1.2);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 10);
    if (r == 0) ++rank0;
    if (r == 9) ++rank9;
  }
  EXPECT_GT(rank0, rank9 * 3);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) counts[static_cast<size_t>(rng.Zipf(4, 0.0))]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(RngTest, ZipfMemoIsBoundedAcrossExponentSweep) {
  // The per-exponent weight memo must be a small LRU, not an unbounded
  // thread-local vector: a workload sweeping many exponents (e.g. a
  // tuner scanning skew settings) must not grow memory linearly.
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    (void)rng.Zipf(64, 0.5 + 0.01 * i);
  }
  EXPECT_LE(Rng::ZipfMemoCountForTesting(), 8);
}

TEST(RngTest, ZipfDrawsAreStableAcrossMemoEviction) {
  // Recomputing an evicted memo entry must reproduce bit-identical
  // weights: the same seed draws the same ranks before and after the
  // entry was evicted and rebuilt.
  std::vector<int64_t> before;
  {
    Rng rng(99);
    for (int i = 0; i < 32; ++i) before.push_back(rng.Zipf(100, 1.3));
  }
  // Thrash the memo far past its capacity so s=1.3 is evicted.
  Rng thrash(5);
  for (int i = 0; i < 50; ++i) (void)thrash.Zipf(16, 2.0 + 0.03 * i);
  {
    Rng rng(99);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(rng.Zipf(100, 1.3), before[static_cast<size_t>(i)]) << i;
    }
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, ForkIsStableAndIndependent) {
  Rng a(42), b(42);
  Rng fa = a.Fork(5), fb = b.Fork(5);
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  Rng fc = a.Fork(6);
  Rng fa2 = a.Fork(5);
  EXPECT_NE(fa2.NextUint64(), fc.NextUint64());
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0, 1), 0.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

// ------------------------------------------------------------ Histograms

TEST(SampleTest, QuantilesOnKnownData) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 100);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.25), 25.75, 1e-9);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(SampleTest, SummaryCountsAndOrder) {
  Sample s;
  s.Add(5);
  s.Add(1);
  s.Add(9);
  const QuantileSummary q = s.Summary();
  EXPECT_EQ(q.count, 3);
  EXPECT_LE(q.min, q.p25);
  EXPECT_LE(q.p25, q.median);
  EXPECT_LE(q.median, q.p75);
  EXPECT_LE(q.p75, q.max);
}

TEST(SampleTest, StdDevOfConstantIsZero) {
  Sample s;
  s.Add(4);
  s.Add(4);
  s.Add(4);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(SizeHistogramTest, BucketsAndLabels) {
  SizeHistogram h = SizeHistogram::ForFileSizes();
  h.Add(100 * kKiB);       // <1MiB
  h.Add(100 * kMiB);       // <128MiB
  h.Add(2 * kGiB);         // >=1GiB
  EXPECT_EQ(h.total_count(), 3);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_label(0), "<1.0MiB");
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1);
}

TEST(SizeHistogramTest, FractionBelowExact) {
  SizeHistogram h = SizeHistogram::ForFileSizes();
  for (int i = 0; i < 83; ++i) h.Add(64 * kMiB);
  for (int i = 0; i < 17; ++i) h.Add(512 * kMiB);
  EXPECT_NEAR(h.FractionBelow(128 * kMiB), 0.83, 1e-9);
  EXPECT_NEAR(h.FractionBelow(1 * kGiB), 1.0, 1e-9);
  EXPECT_NEAR(h.FractionBelow(1), 0.0, 1e-9);
}

TEST(SizeHistogramTest, BoundaryValueGoesToUpperBucket) {
  SizeHistogram h({10, 20});
  h.Add(10);  // exactly at the first bound -> second bucket
  EXPECT_EQ(h.bucket_count(0), 0);
  EXPECT_EQ(h.bucket_count(1), 1);
}

TEST(SizeHistogramTest, AsciiChartRendersAllBuckets) {
  SizeHistogram h = SizeHistogram::ForFileSizes();
  h.Add(1 * kMiB);
  const std::string chart = h.ToAsciiChart(20);
  EXPECT_NE(chart.find("<1.0MiB"), std::string::npos);
  EXPECT_NE(chart.find(">=1.0GiB"), std::string::npos);
}

// ----------------------------------------------------------------- Units

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(512 * kMiB), "512.0MiB");
  EXPECT_EQ(FormatBytes(kGiB), "1.0GiB");
  EXPECT_EQ(FormatBytes(3 * kTiB / 2), "1.5TiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0), "00h 00m 00s");
  EXPECT_EQ(FormatDuration(kHour + 2 * kMinute + 3), "01h 02m 03s");
  EXPECT_EQ(FormatDuration(25 * kHour), "25h 00m 00s");
}

// ----------------------------------------------------------------- Clock

TEST(ClockTest, AdvanceAndAdvanceTo) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.Now(), 200);
  clock.AdvanceTo(200);  // no-op is allowed
  EXPECT_EQ(clock.Now(), 200);
}

// ---------------------------------------------------------------- Logger

TEST(LoggerTest, ThresholdFiltersLowLevels) {
  const LogLevel prev = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  // These must not crash and must be filtered (no easy capture here, but
  // the macro's short-circuit path is exercised).
  LOG_DEBUG << "hidden";
  LOG_INFO << "hidden";
  Logger::set_threshold(prev);
  SUCCEED();
}

}  // namespace
}  // namespace autocomp
