// Unit tests for src/core: candidates, generators, filters, traits,
// ranking/selection, schedulers, the OODA pipeline, and triggers.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/filters.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/ranking.h"
#include "core/scheduler.h"
#include "core/traits.h"
#include "core/triggers.h"
#include "engine/query_engine.h"
#include "storage/filesystem.h"

namespace autocomp::core {
namespace {

// ------------------------------------------------------------- Candidates

TEST(CandidateTest, IdIsStableAndScoped) {
  Candidate table{"db.t", CandidateScope::kTable, std::nullopt, 0};
  EXPECT_EQ(table.id(), "db.t");
  Candidate partition{"db.t", CandidateScope::kPartition,
                      std::string("m=1995-01"), 0};
  EXPECT_EQ(partition.id(), "db.t/m=1995-01");
  Candidate snapshot{"db.t", CandidateScope::kSnapshot, std::nullopt, 42};
  EXPECT_EQ(snapshot.id(), "db.t@>42");
  EXPECT_FALSE(table == partition);
}

TEST(CandidateStatsTest, SmallFileAccounting) {
  CandidateStats stats;
  stats.target_file_size_bytes = 100;
  stats.file_sizes = {10, 50, 100, 150};
  stats.file_count = 4;
  EXPECT_EQ(stats.small_file_count(), 2);
  EXPECT_EQ(stats.small_file_bytes(), 60);
}

// --------------------------------------------------------- Shared fixture

ObservedCandidate MakeObserved(const std::string& table,
                               std::vector<int64_t> sizes,
                               int64_t target = 100) {
  ObservedCandidate oc;
  oc.candidate.table = table;
  oc.stats.target_file_size_bytes = target;
  oc.stats.file_sizes = sizes;
  oc.stats.file_count = static_cast<int64_t>(sizes.size());
  for (int64_t s : sizes) oc.stats.total_bytes += s;
  oc.stats.file_sizes_by_partition[""] = std::move(sizes);
  return oc;
}

// ----------------------------------------------------------------- Traits

TEST(TraitsTest, FileCountReductionCountsSmallFiles) {
  FileCountReductionTrait trait;
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {10, 20, 150})), 2.0);
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {150, 200})), 0.0);
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {})), 0.0);
  EXPECT_FALSE(trait.is_cost());
}

TEST(TraitsTest, PartitionAwareReductionSubtractsOutputs) {
  // 4 small files of 30 bytes in one partition, target 100: they merge
  // into ceil(120/100)=2 outputs, so reduction is 2 (not 4).
  ObservedCandidate oc;
  oc.stats.target_file_size_bytes = 100;
  oc.stats.file_sizes = {30, 30, 30, 30};
  oc.stats.file_count = 4;
  oc.stats.file_sizes_by_partition["p=1"] = {30, 30, 30, 30};
  PartitionAwareFileCountReductionTrait trait;
  EXPECT_DOUBLE_EQ(trait.Compute(oc), 2.0);

  // Split across partitions, merging is confined: 2 small per partition,
  // each merges to 1 output -> reduction 1 per partition = 2 total.
  ObservedCandidate split;
  split.stats.target_file_size_bytes = 100;
  split.stats.file_sizes = {30, 30, 30, 30};
  split.stats.file_sizes_by_partition["p=1"] = {30, 30};
  split.stats.file_sizes_by_partition["p=2"] = {30, 30};
  EXPECT_DOUBLE_EQ(trait.Compute(split), 2.0);

  // The naive estimator overestimates vs the partition-aware one (§7).
  FileCountReductionTrait naive;
  EXPECT_GT(naive.Compute(oc), trait.Compute(oc));
}

TEST(TraitsTest, SmallFileRatio) {
  SmallFileRatioTrait trait;
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {10, 150})), 0.5);
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {})), 0.0);
}

TEST(TraitsTest, EntropyBoundsAndMonotonicity) {
  FileEntropyTrait trait;
  // Perfect layout: zero entropy.
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {100, 200})), 0.0);
  // Tiny files: entropy approaches 1.
  const double tiny = trait.Compute(MakeObserved("t", {1, 1, 1}));
  EXPECT_GT(tiny, 0.9);
  EXPECT_LE(tiny, 1.0);
  // Near-target files score lower than tiny files.
  const double near = trait.Compute(MakeObserved("t", {90, 90, 90}));
  EXPECT_LT(near, tiny);
  EXPECT_GT(near, 0.0);
}

TEST(TraitsTest, EntropyAlwaysInUnitInterval) {
  FileEntropyTrait trait;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<int64_t> sizes;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int j = 0; j < n; ++j) sizes.push_back(rng.UniformInt(1, 300));
    const double e = trait.Compute(MakeObserved("t", std::move(sizes)));
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(TraitsTest, ComputeCostFollowsPaperFormula) {
  ComputeCostTrait trait(/*executor_memory_gb=*/192,
                         /*rewrite_bytes_per_hour=*/1000);
  // Small bytes = 10 + 20 = 30 -> 192 * 30/1000.
  EXPECT_DOUBLE_EQ(trait.Compute(MakeObserved("t", {10, 20, 150})),
                   192.0 * 30.0 / 1000.0);
  EXPECT_TRUE(trait.is_cost());
}

TEST(TraitsTest, ComputeTraitsFillsAllNames) {
  std::vector<std::shared_ptr<const Trait>> traits = {
      std::make_shared<FileCountReductionTrait>(),
      std::make_shared<FileEntropyTrait>(),
      std::make_shared<ComputeCostTrait>(10, 100)};
  auto result = ComputeTraits({MakeObserved("t", {10, 150})}, traits);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].traits.size(), 3u);
  EXPECT_TRUE(result[0].traits.count("file_count_reduction"));
  EXPECT_TRUE(result[0].traits.count("file_entropy"));
  EXPECT_TRUE(result[0].traits.count("compute_cost_gbhr"));
}

// ---------------------------------------------------------------- Filters

TEST(FiltersTest, RecentCreationFilter) {
  RecentCreationFilter filter(/*min_age=*/kHour);
  ObservedCandidate young = MakeObserved("t", {1});
  young.stats.table_created_at = 10 * kHour;
  EXPECT_FALSE(filter.ShouldKeep(young, 10 * kHour + kMinute));
  EXPECT_TRUE(filter.ShouldKeep(young, 12 * kHour));
}

TEST(FiltersTest, MinSizeAndMinSmallFiles) {
  MinSizeFilter size_filter(100);
  EXPECT_FALSE(size_filter.ShouldKeep(MakeObserved("t", {10, 20}), 0));
  EXPECT_TRUE(size_filter.ShouldKeep(MakeObserved("t", {60, 60}), 0));

  MinSmallFilesFilter small_filter(2);
  EXPECT_FALSE(small_filter.ShouldKeep(MakeObserved("t", {10, 150}), 0));
  EXPECT_TRUE(small_filter.ShouldKeep(MakeObserved("t", {10, 20}), 0));
}

TEST(FiltersTest, RecentWriteActivityFilter) {
  RecentWriteActivityFilter filter(/*quiesce_window=*/10 * kMinute);
  ObservedCandidate hot = MakeObserved("t", {1});
  hot.stats.last_modified_at = kHour;
  EXPECT_FALSE(filter.ShouldKeep(hot, kHour + kMinute));
  EXPECT_TRUE(filter.ShouldKeep(hot, kHour + 11 * kMinute));
}

TEST(FiltersTest, PredicateFilterAndChain) {
  auto only_db1 = std::make_shared<PredicateFilter>(
      "only-db1", [](const ObservedCandidate& c, SimTime) {
        return c.candidate.table.rfind("db1.", 0) == 0;
      });
  auto min_files = std::make_shared<MinSmallFilesFilter>(1);
  std::vector<ObservedCandidate> pool = {
      MakeObserved("db1.a", {10}), MakeObserved("db2.b", {10}),
      MakeObserved("db1.c", {500})};
  int64_t dropped = 0;
  auto kept = ApplyFilters(pool, {only_db1, min_files}, 0, &dropped);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].candidate.table, "db1.a");
  EXPECT_EQ(dropped, 2);
}

// ---------------------------------------------------------------- Ranking

TraitedCandidate MakeTraited(const std::string& table, double reduction,
                             double cost) {
  TraitedCandidate tc;
  tc.observed.candidate.table = table;
  tc.traits["file_count_reduction"] = reduction;
  tc.traits["compute_cost_gbhr"] = cost;
  return tc;
}

TEST(MoopRankerTest, OrdersByWeightedScore) {
  MoopRanker ranker = MoopRanker::PaperDefault();
  // high benefit / low cost should rank first; low benefit / high cost
  // last.
  auto ranked = ranker.Rank({MakeTraited("low", 10, 90),
                             MakeTraited("best", 100, 10),
                             MakeTraited("mid", 50, 50)});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].candidate().table, "best");
  EXPECT_EQ(ranked[2].candidate().table, "low");
  EXPECT_GE(ranked[0].score, ranked[1].score);
  EXPECT_GE(ranked[1].score, ranked[2].score);
}

TEST(MoopRankerTest, ScoresBoundedByWeights) {
  MoopRanker ranker = MoopRanker::PaperDefault();
  auto ranked = ranker.Rank({MakeTraited("a", 1, 1), MakeTraited("b", 5, 9),
                             MakeTraited("c", 9, 3)});
  for (const auto& sc : ranked) {
    EXPECT_LE(sc.score, 0.7 + 1e-9);
    EXPECT_GE(sc.score, -0.3 - 1e-9);
  }
}

TEST(MoopRankerTest, DegenerateTraitNeutral) {
  // All candidates share the same cost: cost cannot influence ranking.
  MoopRanker ranker = MoopRanker::PaperDefault();
  auto ranked = ranker.Rank(
      {MakeTraited("small", 1, 42), MakeTraited("big", 10, 42)});
  EXPECT_EQ(ranked[0].candidate().table, "big");
}

TEST(MoopRankerTest, DeterministicTieBreakById) {
  MoopRanker ranker = MoopRanker::PaperDefault();
  auto ranked = ranker.Rank(
      {MakeTraited("zzz", 5, 5), MakeTraited("aaa", 5, 5)});
  EXPECT_EQ(ranked[0].candidate().table, "aaa");
}

TEST(MoopRankerTest, IdenticalInputsIdenticalOutputs) {
  // NFR2: run twice, same result.
  MoopRanker ranker({{"file_count_reduction", 0.5, false},
                     {"compute_cost_gbhr", 0.5, true}});
  std::vector<TraitedCandidate> pool = {MakeTraited("a", 3, 9),
                                        MakeTraited("b", 7, 2),
                                        MakeTraited("c", 5, 5)};
  auto r1 = ranker.Rank(pool);
  auto r2 = ranker.Rank(pool);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].candidate().table, r2[i].candidate().table);
    EXPECT_DOUBLE_EQ(r1[i].score, r2[i].score);
  }
}

TEST(SingleTraitRankerTest, RanksByRawTrait) {
  SingleTraitRanker ranker("file_count_reduction");
  auto ranked =
      ranker.Rank({MakeTraited("a", 3, 0), MakeTraited("b", 30, 0)});
  EXPECT_EQ(ranked[0].candidate().table, "b");
  EXPECT_DOUBLE_EQ(ranked[0].score, 30);
}

TEST(ThresholdPolicyTest, TriggersAtOrAboveThreshold) {
  ThresholdPolicy policy("file_count_reduction", 10);
  EXPECT_TRUE(policy.ShouldCompact(MakeTraited("t", 10, 0)));
  EXPECT_TRUE(policy.ShouldCompact(MakeTraited("t", 11, 0)));
  EXPECT_FALSE(policy.ShouldCompact(MakeTraited("t", 9.99, 0)));
  auto triggered = policy.Triggered(
      {MakeTraited("a", 5, 0), MakeTraited("b", 15, 0)});
  ASSERT_EQ(triggered.size(), 1u);
}

// -------------------------------------------------------------- Selectors

std::vector<ScoredCandidate> MakeRanked(
    std::initializer_list<std::tuple<std::string, double, double>> rows) {
  // (table, score, cost)
  std::vector<ScoredCandidate> out;
  for (const auto& [table, score, cost] : rows) {
    ScoredCandidate sc;
    sc.traited = MakeTraited(table, 0, cost);
    sc.score = score;
    out.push_back(std::move(sc));
  }
  return out;
}

TEST(FixedKSelectorTest, TakesTopK) {
  auto ranked = MakeRanked({{"a", 3, 0}, {"b", 2, 0}, {"c", 1, 0}});
  EXPECT_EQ(FixedKSelector(2).Select(ranked).size(), 2u);
  EXPECT_EQ(FixedKSelector(0).Select(ranked).size(), 0u);
  EXPECT_EQ(FixedKSelector(99).Select(ranked).size(), 3u);
  EXPECT_EQ(FixedKSelector(-1).Select(ranked).size(), 0u);
}

TEST(BudgetedSelectorTest, RespectsBudgetGreedily) {
  auto ranked = MakeRanked(
      {{"a", 5, 60}, {"b", 4, 50}, {"c", 3, 30}, {"d", 2, 10}});
  BudgetedSelector selector(100, "compute_cost_gbhr");
  auto selected = selector.Select(ranked);
  // a(60) fits; b(50) does not (110 > 100); c(30) fits (90); d(10) fits
  // (100).
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].candidate().table, "a");
  EXPECT_EQ(selected[1].candidate().table, "c");
  EXPECT_EQ(selected[2].candidate().table, "d");
  double total = 0;
  for (const auto& sc : selected) {
    total += sc.traited.traits.at("compute_cost_gbhr");
  }
  EXPECT_LE(total, 100.0);
}

TEST(BudgetedSelectorTest, StrictModeStopsAtFirstMiss) {
  auto ranked = MakeRanked({{"a", 5, 60}, {"b", 4, 50}, {"c", 3, 10}});
  BudgetedSelector selector(100, "compute_cost_gbhr",
                            /*skip_unaffordable=*/false);
  auto selected = selector.Select(ranked);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].candidate().table, "a");
}

TEST(BudgetedSelectorTest, DynamicKGrowsWithBudget) {
  std::vector<ScoredCandidate> ranked;
  for (int i = 0; i < 100; ++i) {
    ScoredCandidate sc;
    sc.traited = MakeTraited("t" + std::to_string(i), 0, 1.0);
    sc.score = 100 - i;
    ranked.push_back(std::move(sc));
  }
  EXPECT_EQ(BudgetedSelector(10, "compute_cost_gbhr").Select(ranked).size(),
            10u);
  EXPECT_EQ(BudgetedSelector(55, "compute_cost_gbhr").Select(ranked).size(),
            55u);
}

TEST(KnapsackSelectorTest, BeatsOrMatchesGreedyValue) {
  // Classic greedy trap: one big item blocks two better small ones.
  auto ranked = MakeRanked({{"big", 10, 100}, {"s1", 6, 50}, {"s2", 6, 50}});
  const auto greedy =
      BudgetedSelector(100, "compute_cost_gbhr").Select(ranked);
  const auto optimal =
      KnapsackSelector(100, "compute_cost_gbhr").Select(ranked);
  auto total_score = [](const std::vector<ScoredCandidate>& v) {
    double s = 0;
    for (const auto& sc : v) s += sc.score;
    return s;
  };
  EXPECT_GE(total_score(optimal), total_score(greedy));
  EXPECT_DOUBLE_EQ(total_score(optimal), 12.0);
  double cost = 0;
  for (const auto& sc : optimal) {
    cost += sc.traited.traits.at("compute_cost_gbhr");
  }
  EXPECT_LE(cost, 100.0 + 1e-9);
}

TEST(KnapsackSelectorTest, EmptyAndZeroBudget) {
  EXPECT_TRUE(KnapsackSelector(0, "compute_cost_gbhr")
                  .Select(MakeRanked({{"a", 1, 1}}))
                  .empty());
  EXPECT_TRUE(KnapsackSelector(10, "compute_cost_gbhr").Select({}).empty());
}

TEST(QuotaWeightTest, ProductionFormula) {
  EXPECT_DOUBLE_EQ(QuotaAwareBenefitWeight(0.0), 0.5);
  EXPECT_DOUBLE_EQ(QuotaAwareBenefitWeight(1.0), 1.0);
  EXPECT_DOUBLE_EQ(QuotaAwareBenefitWeight(0.5), 0.75);
  EXPECT_DOUBLE_EQ(QuotaAwareBenefitWeight(2.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(QuotaAwareBenefitWeight(-1.0), 0.5);
}

// ----------------------------------------------- Generators + integration

class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture()
      : dfs_(&clock_, 1),
        catalog_(&clock_, &dfs_),
        control_plane_(&catalog_),
        query_cluster_("q", {}, &clock_),
        compaction_cluster_("c", CompactionOptions(), &clock_),
        engine_(&query_cluster_, &catalog_, &clock_),
        runner_(&compaction_cluster_, &catalog_, &clock_) {
    EXPECT_TRUE(catalog_.CreateDatabase("db").ok());
  }

  static engine::ClusterOptions CompactionOptions() {
    engine::ClusterOptions opts;
    opts.executors = 3;
    return opts;
  }

  void MakePartitionedTable(const std::string& name) {
    auto table = catalog_.CreateTable(
        "db", name, lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    ASSERT_TRUE(table.ok());
  }

  void MakeUnpartitionedTable(const std::string& name) {
    auto table = catalog_.CreateTable(
        "db", name, lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}}),
        lst::PartitionSpec::Unpartitioned());
    ASSERT_TRUE(table.ok());
  }

  void FragmentTable(const std::string& qualified,
                     std::vector<std::string> partitions,
                     int64_t logical = 256 * kMiB) {
    engine::WriteSpec spec;
    spec.table = qualified;
    spec.logical_bytes = logical;
    spec.partitions = std::move(partitions);
    spec.profile = engine::UntunedUserJobProfile();
    ASSERT_TRUE(engine_.ExecuteWrite(spec, clock_.Now()).ok());
  }

  StatsCollector MakeCollector() {
    return StatsCollector(&catalog_, &control_plane_, &clock_);
  }

  SimulatedClock clock_{0};
  storage::DistributedFileSystem dfs_;
  catalog::Catalog catalog_;
  catalog::ControlPlane control_plane_;
  engine::Cluster query_cluster_;
  engine::Cluster compaction_cluster_;
  engine::QueryEngine engine_;
  engine::CompactionRunner runner_;
};

TEST_F(CoreFixture, TableScopeGeneratorEmitsAllTablesSorted) {
  MakePartitionedTable("b");
  MakeUnpartitionedTable("a");
  TableScopeGenerator gen;
  auto candidates = gen.Generate(&catalog_);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);
  EXPECT_EQ((*candidates)[0].table, "db.a");
  EXPECT_EQ((*candidates)[1].table, "db.b");
  EXPECT_EQ((*candidates)[0].scope, CandidateScope::kTable);
}

TEST_F(CoreFixture, PartitionScopeGeneratorSkipsUnpartitioned) {
  MakePartitionedTable("p");
  MakeUnpartitionedTable("u");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.u", {});
  PartitionScopeGenerator gen;
  auto candidates = gen.Generate(&catalog_);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);
  for (const Candidate& c : *candidates) {
    EXPECT_EQ(c.table, "db.p");
    EXPECT_EQ(c.scope, CandidateScope::kPartition);
    ASSERT_TRUE(c.partition.has_value());
  }
}

TEST_F(CoreFixture, HybridScopeMixes) {
  MakePartitionedTable("p");
  MakeUnpartitionedTable("u");
  FragmentTable("db.p", {"m=2024-01"});
  FragmentTable("db.u", {});
  HybridScopeGenerator gen;
  auto candidates = gen.Generate(&catalog_);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);
  // Sorted by id: "db.p/m=2024-01" < "db.u".
  EXPECT_EQ((*candidates)[0].scope, CandidateScope::kPartition);
  EXPECT_EQ((*candidates)[1].scope, CandidateScope::kTable);
}

TEST_F(CoreFixture, SnapshotScopeTracksLastReplace) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  engine::CompactionRequest request;
  request.table = "db.p";
  auto compacted = runner_.Run(request, clock_.Now());
  ASSERT_TRUE(compacted.ok() && compacted->committed);
  SnapshotScopeGenerator gen;
  auto candidates = gen.Generate(&catalog_);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].after_snapshot_id, compacted->snapshot_id);
}

TEST_F(CoreFixture, StatsCollectorFillsGenericStats) {
  MakePartitionedTable("p");
  clock_.AdvanceTo(kHour);
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  Candidate candidate;
  candidate.table = "db.p";
  candidate.scope = CandidateScope::kTable;
  auto stats = MakeCollector().Collect(candidate);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->file_count, 0);
  EXPECT_EQ(static_cast<int64_t>(stats->file_sizes.size()),
            stats->file_count);
  EXPECT_GT(stats->total_bytes, 0);
  EXPECT_EQ(stats->file_sizes_by_partition.size(), 2u);
  EXPECT_EQ(stats->table_created_at, 0);
  EXPECT_EQ(stats->last_modified_at, kHour);
  EXPECT_EQ(stats->target_file_size_bytes, 512 * kMiB);
}

TEST_F(CoreFixture, StatsCollectorPartitionScope) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  Candidate candidate;
  candidate.table = "db.p";
  candidate.scope = CandidateScope::kPartition;
  candidate.partition = "m=2024-01";
  auto stats = MakeCollector().Collect(candidate);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->file_sizes_by_partition.size(), 1u);
  Candidate full = candidate;
  full.scope = CandidateScope::kTable;
  full.partition.reset();
  auto full_stats = MakeCollector().Collect(full);
  EXPECT_LT(stats->file_count, full_stats->file_count);
}

TEST_F(CoreFixture, StatsCollectorQuotaUtilization) {
  ASSERT_TRUE(catalog_.CreateDatabase("quotadb", 1000).ok());
  auto table = catalog_.CreateTable(
      "quotadb", "t", lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}}),
      lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(table.ok());
  FragmentTable("quotadb.t", {});
  Candidate candidate;
  candidate.table = "quotadb.t";
  auto stats = MakeCollector().Collect(candidate);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->quota_utilization, 0.0);
  EXPECT_LT(stats->quota_utilization, 1.0);
}

// ------------------------------------------------------------- Schedulers

TEST_F(CoreFixture, SerialSchedulerRunsAllUnits) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  auto collector = MakeCollector();
  HybridScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  auto observed = collector.CollectAll(*pool);
  auto traited = ComputeTraits(*observed, {std::make_shared<FileCountReductionTrait>()});
  SingleTraitRanker ranker("file_count_reduction");
  auto ranked = ranker.Rank(traited);

  SerialScheduler scheduler(&runner_, &control_plane_);
  auto executed = scheduler.Execute(ranked, kHour);
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(executed->size(), 2u);
  for (const auto& unit : *executed) {
    EXPECT_TRUE(unit.result.committed);
  }
  // Sequential: second unit starts no earlier than the first ends.
  EXPECT_GE((*executed)[1].result.start_time,
            (*executed)[0].result.end_time);
}

TEST_F(CoreFixture, TableParallelSchedulerSerializesWithinTable) {
  MakePartitionedTable("p1");
  MakePartitionedTable("p2");
  FragmentTable("db.p1", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.p2", {"m=2024-01"});
  auto collector = MakeCollector();
  HybridScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  auto observed = collector.CollectAll(*pool);
  auto traited = ComputeTraits(
      *observed, {std::make_shared<FileCountReductionTrait>()});
  auto ranked = SingleTraitRanker("file_count_reduction").Rank(traited);

  TableParallelScheduler scheduler(&runner_, &control_plane_);
  auto executed = scheduler.Execute(ranked, kHour);
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(executed->size(), 3u);
  // All commit: within-table sequencing avoids the v1.2.0 conflict.
  for (const auto& unit : *executed) {
    EXPECT_TRUE(unit.result.committed) << unit.candidate.id();
  }
  // Units of db.p1 are chained.
  std::vector<const ScheduledCompaction*> p1_units;
  for (const auto& unit : *executed) {
    if (unit.candidate.table == "db.p1") p1_units.push_back(&unit);
  }
  ASSERT_EQ(p1_units.size(), 2u);
  EXPECT_GE(p1_units[1]->result.start_time, p1_units[0]->result.end_time);
}

TEST_F(CoreFixture, RetentionAfterCommitRemovesReplacedFiles) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  const int64_t storage_before = dfs_.AggregateStats().file_count;

  catalog::TablePolicy policy;
  policy.snapshot_retention = 0;  // expire immediately
  control_plane_.SetPolicy("db.p", policy);

  auto collector = MakeCollector();
  TableScopeGenerator gen;
  auto observed = collector.CollectAll(*gen.Generate(&catalog_));
  auto ranked = SingleTraitRanker("file_count_reduction")
                    .Rank(ComputeTraits(
                        *observed,
                        {std::make_shared<FileCountReductionTrait>()}));
  clock_.AdvanceTo(kHour);
  SerialScheduler scheduler(&runner_, &control_plane_);
  auto executed = scheduler.Execute(ranked, clock_.Now());
  ASSERT_TRUE(executed.ok());
  // Storage file count dropped (replaced files physically deleted).
  EXPECT_LT(dfs_.AggregateStats().file_count, storage_before);
}

TEST(OffPeakSchedulerTest, DefersIntoWindow) {
  SimulatedClock clock(0);
  storage::DistributedFileSystem dfs(&clock, 1);
  catalog::Catalog cat(&clock, &dfs);
  catalog::ControlPlane plane(&cat);
  engine::Cluster cluster("c", {}, &clock);
  engine::CompactionRunner runner(&cluster, &cat, &clock);
  OffPeakScheduler scheduler(
      std::make_unique<SerialScheduler>(&runner, &plane), 22, 6);
  // 10:00 is outside [22,06): next window start is 22:00 today.
  EXPECT_EQ(scheduler.NextWindowStart(10 * kHour), 22 * kHour);
  // 23:00 is inside.
  EXPECT_EQ(scheduler.NextWindowStart(23 * kHour), 23 * kHour);
  // 03:00 is inside (wrapped window).
  EXPECT_EQ(scheduler.NextWindowStart(27 * kHour), 27 * kHour);
  // Non-wrapping window [2,4): at 05:00, next start is tomorrow 02:00.
  OffPeakScheduler narrow(
      std::make_unique<SerialScheduler>(&runner, &plane), 2, 4);
  EXPECT_EQ(narrow.NextWindowStart(5 * kHour), kDay + 2 * kHour);
}

// ------------------------------------------------------------- Pipeline

TEST_F(CoreFixture, PipelineEndToEnd) {
  MakePartitionedTable("p");
  MakeUnpartitionedTable("u");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.u", {});
  clock_.AdvanceTo(kHour);

  AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<HybridScopeGenerator>();
  stages.collector = std::make_shared<StatsCollector>(
      &catalog_, &control_plane_, &clock_);
  stages.pre_orient_filters = {std::make_shared<MinSmallFilesFilter>(2)};
  stages.traits = {std::make_shared<FileCountReductionTrait>(),
                   std::make_shared<ComputeCostTrait>(192, kTiB)};
  stages.ranker = std::make_shared<MoopRanker>(MoopRanker::PaperDefault());
  stages.selector = std::make_shared<FixedKSelector>(2);
  stages.scheduler = std::make_shared<TableParallelScheduler>(
      &runner_, &control_plane_);
  AutoCompPipeline pipeline(std::move(stages), &catalog_, &clock_);

  auto report = pipeline.RunOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->candidates_generated, 3);
  EXPECT_EQ(report->selected.size(), 2u);
  EXPECT_EQ(report->committed_count(), 2);
  EXPECT_GT(report->files_reduced(), 0);
  EXPECT_GT(report->actual_gb_hours(), 0);
  EXPECT_EQ(report->feedback.size(), 2u);
  for (const FeedbackEntry& fb : report->feedback) {
    EXPECT_GT(fb.estimated_file_reduction, 0);
    EXPECT_GT(fb.actual_file_reduction, 0);
  }
}

TEST_F(CoreFixture, PipelineDryRunWithoutScheduler) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<TableScopeGenerator>();
  stages.collector = std::make_shared<StatsCollector>(
      &catalog_, &control_plane_, &clock_);
  stages.traits = {std::make_shared<FileCountReductionTrait>()};
  stages.ranker = std::make_shared<SingleTraitRanker>("file_count_reduction");
  stages.selector = std::make_shared<FixedKSelector>(10);
  stages.scheduler = nullptr;  // decide-only
  AutoCompPipeline pipeline(std::move(stages), &catalog_, &clock_);
  auto report = pipeline.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->selected.empty());
  EXPECT_TRUE(report->executed.empty());
}

TEST_F(CoreFixture, PipelineDeterministicAcrossRuns) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  auto make_pipeline = [&]() {
    AutoCompPipeline::Stages stages;
    stages.generator = std::make_shared<HybridScopeGenerator>();
    stages.collector = std::make_shared<StatsCollector>(
        &catalog_, &control_plane_, &clock_);
    stages.traits = {std::make_shared<FileCountReductionTrait>(),
                     std::make_shared<ComputeCostTrait>(192, kTiB)};
    stages.ranker = std::make_shared<MoopRanker>(MoopRanker::PaperDefault());
    stages.selector = std::make_shared<FixedKSelector>(5);
    stages.scheduler = nullptr;
    return AutoCompPipeline(std::move(stages), &catalog_, &clock_);
  };
  auto r1 = make_pipeline().RunOnce();
  auto r2 = make_pipeline().RunOnce();
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->ranked.size(), r2->ranked.size());
  for (size_t i = 0; i < r1->ranked.size(); ++i) {
    EXPECT_EQ(r1->ranked[i].candidate().id(), r2->ranked[i].candidate().id());
    EXPECT_DOUBLE_EQ(r1->ranked[i].score, r2->ranked[i].score);
  }
}

// --------------------------------------------------------------- Triggers

TEST(PeriodicTriggerTest, DueAndAdvance) {
  PeriodicTrigger trigger(kHour, kHour);
  EXPECT_FALSE(trigger.Due(kMinute));
  EXPECT_TRUE(trigger.Due(kHour));
  trigger.MarkRun(kHour);
  EXPECT_EQ(trigger.next_due(), 2 * kHour);
  // Missed intervals collapse.
  trigger.MarkRun(10 * kHour);
  EXPECT_EQ(trigger.next_due(), 11 * kHour);
}

TEST_F(CoreFixture, NotifyHookQueuesAndDeduplicates) {
  OptimizeAfterWriteHook hook;
  ASSERT_TRUE(hook.OnWrite("db.t", std::nullopt, 0).ok());
  ASSERT_TRUE(hook.OnWrite("db.t", std::nullopt, 1).ok());
  ASSERT_TRUE(hook.OnWrite("db.t", std::string("m=1"), 2).ok());
  auto drained = hook.DrainNotifications();
  ASSERT_EQ(drained.size(), 2u);  // table + (table,partition)
  EXPECT_TRUE(hook.DrainNotifications().empty());
}

TEST_F(CoreFixture, ImmediateHookCompactsWhenThresholdExceeded) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  OptimizeAfterWriteHook::ImmediateStages stages{
      std::make_shared<StatsCollector>(&catalog_, &control_plane_, &clock_),
      {std::make_shared<FileCountReductionTrait>()},
      ThresholdPolicy("file_count_reduction", 5),
      std::make_shared<SerialScheduler>(&runner_, &control_plane_)};
  OptimizeAfterWriteHook hook(std::move(stages));
  auto result = hook.OnWrite("db.p", std::string("m=2024-01"), kHour);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->has_value());
  EXPECT_TRUE((*result)->result.committed);
  EXPECT_EQ(hook.triggered_count(), 1);

  // Below threshold now: no trigger.
  auto again = hook.OnWrite("db.p", std::string("m=2024-01"), 2 * kHour);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->has_value());
  EXPECT_EQ(hook.evaluated_count(), 2);
}

TEST_F(CoreFixture, ServiceTicksOnSchedule) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<TableScopeGenerator>();
  stages.collector = std::make_shared<StatsCollector>(
      &catalog_, &control_plane_, &clock_);
  stages.traits = {std::make_shared<FileCountReductionTrait>()};
  stages.ranker = std::make_shared<SingleTraitRanker>("file_count_reduction");
  stages.selector = std::make_shared<FixedKSelector>(10);
  stages.scheduler = std::make_shared<SerialScheduler>(&runner_,
                                                       &control_plane_);
  auto pipeline = std::make_unique<AutoCompPipeline>(std::move(stages),
                                                     &catalog_, &clock_);
  AutoCompService service(std::move(pipeline), PeriodicTrigger(kHour, kHour));

  clock_.AdvanceTo(kMinute);
  auto early = service.Tick(clock_.Now());
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early->has_value());

  clock_.AdvanceTo(kHour);
  auto due = service.Tick(clock_.Now());
  ASSERT_TRUE(due.ok());
  ASSERT_TRUE(due->has_value());
  EXPECT_GT((*due)->committed_count(), 0);
  EXPECT_EQ(service.history().size(), 1u);

  // Not due again until the next interval.
  auto not_due = service.Tick(clock_.Now());
  ASSERT_TRUE(not_due.ok());
  EXPECT_FALSE(not_due->has_value());
}


// ------------------------------------------------- CachingStatsCollector

TEST_F(CoreFixture, CachingCollectorHitsUntilVersionMoves) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  CachingStatsCollector collector(&catalog_, &control_plane_, &clock_);
  Candidate candidate;
  candidate.table = "db.p";

  auto first = collector.Collect(candidate);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(collector.misses(), 1);
  EXPECT_EQ(collector.hits(), 0);

  auto second = collector.Collect(candidate);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(collector.hits(), 1);
  EXPECT_EQ(second->file_count, first->file_count);

  // A commit moves the version: the cache misses and sees the new state.
  FragmentTable("db.p", {"m=2024-02"});
  auto third = collector.Collect(candidate);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(collector.misses(), 2);
  EXPECT_GT(third->file_count, first->file_count);
}

TEST_F(CoreFixture, CachingCollectorMatchesPlainCollector) {
  MakePartitionedTable("p");
  MakeUnpartitionedTable("u");
  FragmentTable("db.p", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.u", {});
  StatsCollector plain(&catalog_, &control_plane_, &clock_);
  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  HybridScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  ASSERT_TRUE(pool.ok());
  // Two rounds through the cache: second round is all hits and must
  // still agree with the plain collector.
  for (int round = 0; round < 2; ++round) {
    for (const Candidate& c : *pool) {
      auto a = plain.Collect(c);
      auto b = cached.Collect(c);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->file_count, b->file_count) << c.id();
      EXPECT_EQ(a->total_bytes, b->total_bytes) << c.id();
      EXPECT_EQ(a->small_file_count(), b->small_file_count()) << c.id();
    }
  }
  EXPECT_GT(cached.hits(), 0);
}

TEST_F(CoreFixture, CachingCollectorInvalidate) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  CachingStatsCollector collector(&catalog_, &control_plane_, &clock_);
  Candidate candidate;
  candidate.table = "db.p";
  ASSERT_TRUE(collector.Collect(candidate).ok());
  collector.Invalidate();
  ASSERT_TRUE(collector.Collect(candidate).ok());
  EXPECT_EQ(collector.misses(), 2);
}

// Field-wise equality of two observed stats; byte-identical is the
// contract between the sequential, parallel, and cached paths (NFR2).
void ExpectStatsEq(const CandidateStats& a, const CandidateStats& b,
                   const std::string& context) {
  EXPECT_EQ(a.file_count, b.file_count) << context;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << context;
  EXPECT_EQ(a.file_sizes, b.file_sizes) << context;
  EXPECT_EQ(a.target_file_size_bytes, b.target_file_size_bytes) << context;
  EXPECT_EQ(a.table_created_at, b.table_created_at) << context;
  EXPECT_EQ(a.last_modified_at, b.last_modified_at) << context;
  EXPECT_EQ(a.file_sizes_by_partition, b.file_sizes_by_partition) << context;
  EXPECT_EQ(a.delete_file_count, b.delete_file_count) << context;
  EXPECT_EQ(a.unclustered_bytes, b.unclustered_bytes) << context;
  EXPECT_EQ(a.quota_utilization, b.quota_utilization) << context;
  EXPECT_EQ(a.custom.entries(), b.custom.entries()) << context;
}

// ------------------------------------------- Parallel pipeline determinism

TEST_F(CoreFixture, ParallelGeneratorsMatchSequential) {
  MakePartitionedTable("p1");
  MakePartitionedTable("p2");
  MakeUnpartitionedTable("u1");
  MakeUnpartitionedTable("u2");
  FragmentTable("db.p1", {"m=2024-01", "m=2024-02", "m=2024-03"});
  FragmentTable("db.p2", {"m=2024-01"});
  FragmentTable("db.u1", {});

  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const std::vector<std::shared_ptr<const CandidateGenerator>> generators = {
      std::make_shared<TableScopeGenerator>(),
      std::make_shared<PartitionScopeGenerator>(),
      std::make_shared<HybridScopeGenerator>(),
      std::make_shared<SnapshotScopeGenerator>(),
  };
  for (const auto& gen : generators) {
    auto sequential = gen->Generate(&catalog_);
    auto parallel1 = gen->Generate(&catalog_, &pool1);
    auto parallel4 = gen->Generate(&catalog_, &pool4);
    ASSERT_TRUE(sequential.ok() && parallel1.ok() && parallel4.ok());
    ASSERT_EQ(sequential->size(), parallel4->size()) << gen->name();
    for (size_t i = 0; i < sequential->size(); ++i) {
      EXPECT_EQ((*sequential)[i].id(), (*parallel1)[i].id()) << gen->name();
      EXPECT_EQ((*sequential)[i].id(), (*parallel4)[i].id()) << gen->name();
      EXPECT_TRUE((*sequential)[i] == (*parallel4)[i]) << gen->name();
    }
  }
}

TEST_F(CoreFixture, ParallelPipelineReportMatchesSequential) {
  MakePartitionedTable("p1");
  MakePartitionedTable("p2");
  MakeUnpartitionedTable("u1");
  MakeUnpartitionedTable("u2");
  FragmentTable("db.p1", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.p2", {"m=2024-01", "m=2024-03"});
  FragmentTable("db.u1", {});
  FragmentTable("db.u2", {});

  ThreadPool pool1(1);
  ThreadPool pool4(4);
  // Decide-only pipeline (no scheduler) so repeated runs see identical
  // catalog state; candidate ids, ranking order, scores, and selection
  // must be byte-identical across pool sizes.
  const auto run_with = [&](ThreadPool* pool) {
    AutoCompPipeline::Stages stages;
    stages.generator = std::make_shared<HybridScopeGenerator>();
    stages.collector = std::make_shared<StatsCollector>(
        &catalog_, &control_plane_, &clock_);
    stages.traits = {std::make_shared<FileCountReductionTrait>(),
                     std::make_shared<FileEntropyTrait>(),
                     std::make_shared<ComputeCostTrait>(24.0, 1e9)};
    stages.ranker = std::make_shared<MoopRanker>(
        std::vector<MoopRanker::Objective>{
            {"file_count_reduction", 0.7, false},
            {"compute_cost_gbhr", 0.3, true}});
    stages.selector = std::make_shared<FixedKSelector>(3);
    stages.scheduler = nullptr;
    stages.pool = pool;
    AutoCompPipeline pipeline(std::move(stages), &catalog_, &clock_);
    auto report = pipeline.RunOnce();
    EXPECT_TRUE(report.ok());
    return std::move(*report);
  };

  const PipelineRunReport sequential = run_with(nullptr);
  const PipelineRunReport parallel1 = run_with(&pool1);
  const PipelineRunReport parallel4 = run_with(&pool4);

  for (const PipelineRunReport* parallel : {&parallel1, &parallel4}) {
    EXPECT_EQ(sequential.candidates_generated, parallel->candidates_generated);
    ASSERT_EQ(sequential.ranked.size(), parallel->ranked.size());
    for (size_t i = 0; i < sequential.ranked.size(); ++i) {
      const ScoredCandidate& a = sequential.ranked[i];
      const ScoredCandidate& b = parallel->ranked[i];
      EXPECT_EQ(a.candidate().id(), b.candidate().id()) << "rank " << i;
      EXPECT_EQ(a.score, b.score) << "rank " << i;  // exact, not approx
      EXPECT_EQ(a.traited.traits, b.traited.traits) << "rank " << i;
      ExpectStatsEq(a.traited.observed.stats, b.traited.observed.stats,
                    "rank " + std::to_string(i));
    }
    ASSERT_EQ(sequential.selected.size(), parallel->selected.size());
    for (size_t i = 0; i < sequential.selected.size(); ++i) {
      EXPECT_EQ(sequential.selected[i].candidate().id(),
                parallel->selected[i].candidate().id());
    }
  }
}

TEST_F(CoreFixture, ParallelCollectAllPropagatesFirstError) {
  MakePartitionedTable("p1");
  FragmentTable("db.p1", {"m=2024-01"});
  StatsCollector collector(&catalog_, &control_plane_, &clock_);
  std::vector<Candidate> pool;
  Candidate good;
  good.table = "db.p1";
  Candidate bad;
  bad.table = "db.does_not_exist";
  pool = {good, bad, good};
  ThreadPool threads(4);
  auto sequential = collector.CollectAll(pool);
  auto parallel = collector.CollectAll(pool, &threads);
  ASSERT_FALSE(sequential.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(sequential.status().ToString(), parallel.status().ToString());
}

TEST_F(CoreFixture, CachingCollectorParallelMatchesSequential) {
  MakePartitionedTable("p1");
  MakeUnpartitionedTable("u1");
  FragmentTable("db.p1", {"m=2024-01", "m=2024-02"});
  FragmentTable("db.u1", {});
  HybridScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  ASSERT_TRUE(pool.ok());
  StatsCollector plain(&catalog_, &control_plane_, &clock_);
  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  ThreadPool threads(4);
  for (int round = 0; round < 2; ++round) {
    auto a = plain.CollectAll(*pool);
    auto b = cached.CollectAll(*pool, &threads);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      ExpectStatsEq((*a)[i].stats, (*b)[i].stats, (*a)[i].candidate.id());
    }
  }
  EXPECT_GT(cached.hits(), 0);
}

// -------------------------------------- Commit-scoped cache invalidation

TEST_F(CoreFixture, CachingCollectorInvalidatesOnlyCommittedTable) {
  MakePartitionedTable("p1");
  MakePartitionedTable("p2");
  MakeUnpartitionedTable("u1");
  FragmentTable("db.p1", {"m=2024-01"});
  FragmentTable("db.p2", {"m=2024-01"});
  FragmentTable("db.u1", {});

  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  TableScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool->size(), 3u);

  // Cycle 1: cold.
  ASSERT_TRUE(cached.CollectAll(*pool).ok());
  EXPECT_EQ(cached.misses(), 3);
  EXPECT_EQ(cached.hits(), 0);

  // A commit lands on db.p1 only; its cache entry must be evicted via the
  // catalog commit listener, everything else stays cached.
  FragmentTable("db.p1", {"m=2024-02"});

  // Cycle 2: exactly one miss (the committed table), two hits.
  auto warm = cached.CollectAll(*pool);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cached.misses(), 4);
  EXPECT_EQ(cached.hits(), 2);

  // Every candidate — cached or recomputed — matches a cold collector,
  // including db-level quota utilization, which the p1 commit changed for
  // the *cached* p2/u1 entries (volatile fields refresh on every hit).
  StatsCollector cold(&catalog_, &control_plane_, &clock_);
  for (const ObservedCandidate& oc : *warm) {
    auto fresh = cold.Collect(oc.candidate);
    ASSERT_TRUE(fresh.ok());
    ExpectStatsEq(*fresh, oc.stats, oc.candidate.id());
  }
}

TEST_F(CoreFixture, CachingCollectorRefreshesQuotaOnHit) {
  // A database with a namespace quota: commits to one table change the
  // quota utilization observed by every *other* table in the database,
  // without touching their snapshots. Cached entries must still serve
  // the fresh quota value.
  ASSERT_TRUE(catalog_.CreateDatabase("tenant", 10'000).ok());
  auto t1 = catalog_.CreateTable(
      "tenant", "a", lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}}),
      lst::PartitionSpec::Unpartitioned());
  auto t2 = catalog_.CreateTable(
      "tenant", "b", lst::Schema(0, {{1, "v", lst::FieldType::kInt64, true}}),
      lst::PartitionSpec::Unpartitioned());
  ASSERT_TRUE(t1.ok() && t2.ok());
  FragmentTable("tenant.a", {});
  FragmentTable("tenant.b", {});

  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  Candidate b_candidate;
  b_candidate.table = "tenant.b";
  auto cold = cached.Collect(b_candidate);
  ASSERT_TRUE(cold.ok());

  // Commit to tenant.a: tenant.b's snapshot is untouched (cache hit) but
  // the shared database quota moved.
  FragmentTable("tenant.a", {});
  auto warm = cached.Collect(b_candidate);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cached.hits(), 1);
  EXPECT_GT(warm->quota_utilization, cold->quota_utilization);

  StatsCollector plain(&catalog_, &control_plane_, &clock_);
  auto fresh = plain.Collect(b_candidate);
  ASSERT_TRUE(fresh.ok());
  ExpectStatsEq(*fresh, *warm, "tenant.b");
}

TEST_F(CoreFixture, CachingCollectorDropTableEvictsEntries) {
  MakePartitionedTable("p1");
  FragmentTable("db.p1", {"m=2024-01"});
  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  Candidate c;
  c.table = "db.p1";
  ASSERT_TRUE(cached.Collect(c).ok());
  EXPECT_EQ(cached.size(), 1);
  ASSERT_TRUE(catalog_.DropTable("db.p1").ok());
  EXPECT_EQ(cached.size(), 0);
}

TEST_F(CoreFixture, CachingCollectorPrefixEvictionRespectsBoundaries) {
  // "db.p" and "db.p2" share a name prefix; invalidating "db.p" must not
  // evict "db.p2" (and vice versa).
  MakePartitionedTable("p");
  MakePartitionedTable("p2");
  FragmentTable("db.p", {"m=2024-01"});
  FragmentTable("db.p2", {"m=2024-01"});
  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_);
  HybridScopeGenerator gen;
  auto pool = gen.Generate(&catalog_);
  ASSERT_TRUE(pool.ok());
  ASSERT_TRUE(cached.CollectAll(*pool).ok());
  const int64_t entries = cached.size();
  ASSERT_GE(entries, 2);
  cached.InvalidateTable("db.p");
  EXPECT_EQ(cached.size(), entries - 1);  // only db.p's partition entry
  cached.InvalidateTable("db.p2");
  EXPECT_EQ(cached.size(), entries - 2);
}

TEST_F(CoreFixture, CachingCollectorLruEviction) {
  MakePartitionedTable("p1");
  MakePartitionedTable("p2");
  MakePartitionedTable("p3");
  FragmentTable("db.p1", {"m=2024-01"});
  FragmentTable("db.p2", {"m=2024-01"});
  FragmentTable("db.p3", {"m=2024-01"});
  CachingStatsCollector cached(&catalog_, &control_plane_, &clock_,
                               /*capacity=*/2);
  Candidate c1, c2, c3;
  c1.table = "db.p1";
  c2.table = "db.p2";
  c3.table = "db.p3";
  ASSERT_TRUE(cached.Collect(c1).ok());
  ASSERT_TRUE(cached.Collect(c2).ok());
  ASSERT_TRUE(cached.Collect(c3).ok());  // evicts c1 (least recent)
  EXPECT_EQ(cached.size(), 2);
  ASSERT_TRUE(cached.Collect(c2).ok());  // still cached
  EXPECT_EQ(cached.hits(), 1);
  ASSERT_TRUE(cached.Collect(c1).ok());  // was evicted: a miss again
  EXPECT_EQ(cached.misses(), 4);
}

TEST_F(CoreFixture, CachingCollectorPlugsIntoPipeline) {
  MakePartitionedTable("p");
  FragmentTable("db.p", {"m=2024-01"});
  auto caching = std::make_shared<CachingStatsCollector>(
      &catalog_, &control_plane_, &clock_);
  AutoCompPipeline::Stages stages;
  stages.generator = std::make_shared<TableScopeGenerator>();
  stages.collector = caching;  // polymorphic slot-in (NFR1)
  stages.traits = {std::make_shared<FileCountReductionTrait>()};
  stages.ranker = std::make_shared<SingleTraitRanker>("file_count_reduction");
  stages.selector = std::make_shared<FixedKSelector>(5);
  stages.scheduler = nullptr;
  AutoCompPipeline pipeline(std::move(stages), &catalog_, &clock_);
  ASSERT_TRUE(pipeline.RunOnce().ok());
  ASSERT_TRUE(pipeline.RunOnce().ok());  // idle fleet: second run all hits
  EXPECT_GT(caching->hits(), 0);
}

}  // namespace
}  // namespace autocomp::core
