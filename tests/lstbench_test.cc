// Tests for the LST-Bench-style workload runner (§6.3 harness).

#include <gtest/gtest.h>

#include "sim/lstbench.h"

namespace autocomp::sim {
namespace {

LstBenchConfig SmallConfig(LstBenchWorkload workload) {
  LstBenchConfig config;
  config.workload = workload;
  config.sessions = 2;
  config.queries_per_pass = 10;
  config.total_logical_bytes = 6 * kGiB;
  return config;
}

TEST(LstBenchTest, WorkloadNames) {
  EXPECT_STREQ(LstBenchWorkloadName(LstBenchWorkload::kWp1), "tpcds-wp1");
  EXPECT_STREQ(LstBenchWorkloadName(LstBenchWorkload::kWp3), "tpcds-wp3");
  EXPECT_STREQ(LstBenchWorkloadName(LstBenchWorkload::kTpchLike), "tpch");
}

TEST(LstBenchTest, DefaultRunsAllWorkloads) {
  for (const LstBenchWorkload workload :
       {LstBenchWorkload::kWp1, LstBenchWorkload::kWp3,
        LstBenchWorkload::kTpchLike}) {
    LstBenchRunner runner(SmallConfig(workload));
    auto duration = runner.RunDefault();
    ASSERT_TRUE(duration.ok()) << duration.status();
    EXPECT_GT(*duration, 0) << LstBenchWorkloadName(workload);
  }
}

TEST(LstBenchTest, DeterministicForConfig) {
  LstBenchRunner runner(SmallConfig(LstBenchWorkload::kWp1));
  auto a = runner.Run("file_count_reduction", 500);
  auto b = runner.Run("file_count_reduction", 500);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(LstBenchTest, UnsupportedTraitRejected) {
  LstBenchRunner runner(SmallConfig(LstBenchWorkload::kWp1));
  EXPECT_TRUE(runner.Run("no_such_trait", 1).status().IsInvalidArgument());
}

TEST(LstBenchTest, Wp3BenefitsFromCompaction) {
  // Decoupled clusters: triggering compaction never contends with reads,
  // so a permissive threshold strictly helps (the paper's (d) shape).
  // Needs enough scale for fragmentation to show up in read times.
  LstBenchConfig config = SmallConfig(LstBenchWorkload::kWp3);
  config.sessions = 3;
  config.queries_per_pass = 25;
  config.total_logical_bytes = 16 * kGiB;
  config.modify_fraction = 0.04;
  LstBenchRunner runner(config);
  auto without = runner.RunDefault();
  auto with = runner.Run("file_count_reduction", 50);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_LT(*with, *without);
}

TEST(LstBenchTest, TpchAggressiveTriggerDoesNotBeatDefault) {
  // TPC-H: whole-table rewrites of unpartitioned tables on the shared
  // cluster; an aggressive trigger cannot beat the default (paper (b)).
  LstBenchRunner runner(SmallConfig(LstBenchWorkload::kTpchLike));
  auto without = runner.RunDefault();
  auto aggressive = runner.Run("file_count_reduction", 10);
  ASSERT_TRUE(without.ok() && aggressive.ok());
  EXPECT_GE(*aggressive, *without * 0.999);
}

TEST(LstBenchTest, ThresholdExtremesMatchDefault) {
  // A threshold no candidate can reach behaves like the default.
  LstBenchRunner runner(SmallConfig(LstBenchWorkload::kWp1));
  auto without = runner.RunDefault();
  auto unreachable = runner.Run("file_count_reduction", 1e15);
  ASSERT_TRUE(without.ok() && unreachable.ok());
  EXPECT_DOUBLE_EQ(*without, *unreachable);
}

}  // namespace
}  // namespace autocomp::sim
