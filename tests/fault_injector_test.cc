// Unit tests for src/fault: the counter-RNG fault injector (schedules,
// profiles, arming gate, counters, Status mapping) and the deterministic
// exponential-backoff retry policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/retry_policy.h"

namespace autocomp::fault {
namespace {

TEST(FaultInjectorTest, DisabledInjectorIsInert) {
  FaultInjector injector;  // default options: enabled = false
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.t"), FaultKind::kNone);
  }
  EXPECT_EQ(injector.total_hits(), 0);
  EXPECT_EQ(injector.total_injected(), 0);
  EXPECT_TRUE(injector.Counters().empty());
}

TEST(FaultInjectorTest, EnabledButEmptyShortCircuits) {
  // The zero-fault parity configuration: armed but with nothing that
  // could ever fire. Arm() must short-circuit before any counting, RNG,
  // or string work — unconfigured sites leave no trace in the counters
  // (this is the armed-overhead budget's fast path).
  FaultInjectorOptions options;
  options.enabled = true;
  FaultInjector injector(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Arm(kSiteStorageOpen, "/data/db/t/f.parquet"),
              FaultKind::kNone);
  }
  EXPECT_EQ(injector.total_hits(), 0);
  EXPECT_EQ(injector.total_injected(), 0);
  EXPECT_TRUE(injector.Counters().empty());
}

TEST(FaultInjectorTest, OnlyConfiguredSitesCountHits) {
  // A schedule on one site must not make Arm() pay (or count) anything
  // on other sites; the configured site keeps full hit accounting.
  FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(kSiteLstCommit, 2, FaultKind::kCasRaceConflict);
  FaultInjector injector(options);
  EXPECT_EQ(injector.Arm(kSiteStorageOpen, "/f"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.t"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteStorageOpen, "/f"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.t"),
            FaultKind::kCasRaceConflict);
  const auto counters = injector.Counters();
  EXPECT_EQ(counters.count(kSiteStorageOpen), 0u)
      << "unconfigured site leaked into the counters";
  ASSERT_EQ(counters.count(kSiteLstCommit), 1u);
  EXPECT_EQ(counters.at(kSiteLstCommit).hits, 2);
  EXPECT_EQ(injector.total_hits(), 2);
}

TEST(FaultInjectorTest, ScheduleFiresOnExactHit) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(kSiteLstCommit, 3, FaultKind::kCasRaceConflict);
  FaultInjector injector(options);
  std::vector<FaultKind> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.Arm(kSiteLstCommit, "db.t"));
  const std::vector<FaultKind> want = {
      FaultKind::kNone,           FaultKind::kNone, FaultKind::kCasRaceConflict,
      FaultKind::kNone,           FaultKind::kNone, FaultKind::kNone};
  EXPECT_EQ(fired, want);
  const auto counters = injector.Counters();
  ASSERT_EQ(counters.count(kSiteLstCommit), 1u);
  EXPECT_EQ(counters.at(kSiteLstCommit).hits, 6);
  EXPECT_EQ(counters.at(kSiteLstCommit).injected, 1);
}

TEST(FaultInjectorTest, ScheduleResourceFilterCountsMatchingHitsOnly) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(kSiteLstCommit, 2, FaultKind::kValidationAbort,
                       "db.victim");
  FaultInjector injector(options);
  // Non-matching arms must not advance the filtered count.
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.other"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.victim"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.other"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.victim"),
            FaultKind::kValidationAbort);
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.victim"), FaultKind::kNone);
}

TEST(FaultInjectorTest, SchedulesOnDistinctSitesAreIndependent) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(kSiteStorageOpen, 1, FaultKind::kTimeout);
  options.schedule.Add(kSiteEngineRunner, 2, FaultKind::kRunnerCrash);
  FaultInjector injector(options);
  EXPECT_EQ(injector.Arm(kSiteEngineRunner, "db.t"), FaultKind::kNone);
  EXPECT_EQ(injector.Arm(kSiteStorageOpen, "/f"), FaultKind::kTimeout);
  EXPECT_EQ(injector.Arm(kSiteEngineRunner, "db.t"), FaultKind::kRunnerCrash);
}

TEST(FaultInjectorTest, ProfileDrawsAreAPureFunctionOfHitIndex) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.seed = 1234;
  options.profile.sites[kSiteStorageOpen] = {{0.3, FaultKind::kTimeout}};
  // Two injectors, same options: arming the same (site, resource)
  // sequence yields the same kinds even when injector B interleaves
  // arms of unrelated sites and resources.
  FaultInjector a(options);
  FaultInjector b(options);
  int injected = 0;
  for (int i = 0; i < 200; ++i) {
    (void)b.Arm(kSiteLstCommit, "db.noise");  // unrelated site
    const FaultKind ka = a.Arm(kSiteStorageOpen, "/f1");
    const FaultKind kb = b.Arm(kSiteStorageOpen, "/f1");
    ASSERT_EQ(ka, kb) << "draw " << i << " depends on interleaving";
    if (ka != FaultKind::kNone) ++injected;
  }
  // p=0.3 over 200 draws: the profile path must actually fire.
  EXPECT_GT(injected, 20);
  EXPECT_LT(injected, 120);
}

TEST(FaultInjectorTest, ProfileDrawsDependOnSeed) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.profile.sites[kSiteStorageOpen] = {{0.5, FaultKind::kTimeout}};
  options.seed = 1;
  FaultInjector a(options);
  options.seed = 2;
  FaultInjector b(options);
  bool differs = false;
  for (int i = 0; i < 64 && !differs; ++i) {
    differs = a.Arm(kSiteStorageOpen, "/f") != b.Arm(kSiteStorageOpen, "/f");
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, DisarmedGateSuppressesAndDoesNotCount) {
  FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(kSiteLstCommit, 1, FaultKind::kCasRaceConflict);
  FaultInjector injector(options);
  injector.set_armed(false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.t"), FaultKind::kNone);
  }
  EXPECT_EQ(injector.total_hits(), 0) << "disarmed arms must not count";
  injector.set_armed(true);
  // The schedule's hit 1 is still pending — the first armed hit fires it.
  EXPECT_EQ(injector.Arm(kSiteLstCommit, "db.t"),
            FaultKind::kCasRaceConflict);
}

TEST(FaultInjectorTest, ToStatusMapsKindsToCanonicalCodes) {
  EXPECT_TRUE(FaultInjector::ToStatus(FaultKind::kNone, "s", "r").ok());
  EXPECT_TRUE(
      FaultInjector::ToStatus(FaultKind::kTimeout, "s", "r").IsTimedOut());
  EXPECT_TRUE(FaultInjector::ToStatus(FaultKind::kQuotaExceeded, "s", "r")
                  .IsResourceExhausted());
  for (const FaultKind kind :
       {FaultKind::kCasRaceConflict, FaultKind::kValidationAbort,
        FaultKind::kDisjointRewriteAbort}) {
    EXPECT_TRUE(FaultInjector::ToStatus(kind, "s", "r").IsCommitConflict());
  }
  const Status crash =
      FaultInjector::ToStatus(FaultKind::kRunnerCrash, "engine.runner", "db.t");
  EXPECT_FALSE(crash.ok());
  // Messages carry the site and resource so logs can tell injected
  // failures from organic ones.
  EXPECT_NE(crash.message().find("engine.runner"), std::string::npos);
  EXPECT_NE(crash.message().find("db.t"), std::string::npos);
  EXPECT_NE(crash.message().find("injected"), std::string::npos);
}

TEST(FaultProfileTest, PresetsByName) {
  EXPECT_TRUE(FaultProfileByName("none")->empty());
  EXPECT_FALSE(FaultProfileByName("timeouts")->empty());
  EXPECT_FALSE(FaultProfileByName("conflicts")->empty());
  const auto chaos = FaultProfileByName("chaos");
  ASSERT_TRUE(chaos.ok());
  EXPECT_GE(chaos->sites.size(), 4u);
  EXPECT_TRUE(FaultProfileByName("bogus").status().IsInvalidArgument());
}

// ----------------------------------------------------------- RetryPolicy

TEST(RetryPolicyTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_seconds = 2.0;
  policy.max_backoff_seconds = 60.0;
  policy.jitter_fraction = 0.25;
  policy.seed = 99;
  const uint64_t key = 0xabcdef;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double d = policy.BackoffSeconds(key, attempt);
    EXPECT_EQ(d, policy.BackoffSeconds(key, attempt)) << "not a pure function";
    // Nominal delay doubles per attempt, clamped, then jittered +/-25%.
    const double nominal =
        std::min(60.0, 2.0 * static_cast<double>(1 << (attempt - 1)));
    EXPECT_GE(d, nominal * 0.75 - 1e-9) << "attempt " << attempt;
    EXPECT_LE(d, nominal * 1.25 + 1e-9) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, JitterVariesByKeyAndSeed) {
  RetryPolicy policy;
  bool differs = false;
  for (uint64_t key = 0; key < 16 && !differs; ++key) {
    differs = policy.BackoffSeconds(key, 1) != policy.BackoffSeconds(key + 1, 1);
  }
  EXPECT_TRUE(differs) << "jitter degenerated to a constant";
  RetryPolicy other = policy;
  other.seed = policy.seed + 1;
  EXPECT_NE(policy.BackoffSeconds(7, 2), other.BackoffSeconds(7, 2));
}

TEST(RetryPolicyTest, ZeroJitterIsExactExponential) {
  RetryPolicy policy;
  policy.jitter_fraction = 0;
  EXPECT_EQ(policy.BackoffSeconds(1, 1), 2.0);
  EXPECT_EQ(policy.BackoffSeconds(1, 2), 4.0);
  EXPECT_EQ(policy.BackoffSeconds(1, 3), 8.0);
  EXPECT_EQ(policy.BackoffSeconds(1, 10), 60.0);  // clamped
}

}  // namespace
}  // namespace autocomp::fault
