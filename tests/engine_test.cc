// Unit tests for src/engine: cluster slot scheduling, the write planner's
// file-count model, query execution costs, and the compaction runner.

#include <gtest/gtest.h>

#include <memory>

#include "catalog/catalog.h"
#include "catalog/control_plane.h"
#include "common/clock.h"
#include "common/counter_rng.h"
#include "engine/cluster.h"
#include "engine/compaction_runner.h"
#include "engine/query_engine.h"
#include "engine/write_planner.h"
#include "fault/fault_injector.h"
#include "workload/tpch.h"

namespace autocomp::engine {
namespace {

// --------------------------------------------------------------- Cluster

TEST(ClusterTest, SlotsAndMemory) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 3;
  opts.cores_per_executor = 8;
  opts.executor_memory_gb = 64;
  Cluster cluster("c", opts, &clock);
  EXPECT_EQ(cluster.total_slots(), 24);
  EXPECT_DOUBLE_EQ(cluster.total_memory_gb(), 192);
}

TEST(ClusterTest, SingleTaskRunsImmediately) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 2;
  Cluster cluster("c", opts, &clock);
  const TaskBagResult r = cluster.RunTasks(100, {10.0});
  EXPECT_EQ(r.start_time, 100);
  EXPECT_EQ(r.end_time, 110);
  EXPECT_DOUBLE_EQ(r.queue_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.busy_seconds, 10.0);
}

TEST(ClusterTest, TasksQueueWhenSlotsBusy) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 1;  // single slot
  Cluster cluster("c", opts, &clock);
  const TaskBagResult r = cluster.RunTasks(0, {10.0, 10.0, 10.0});
  EXPECT_EQ(r.end_time, 30);
  EXPECT_DOUBLE_EQ(r.queue_wait_seconds, 10.0 + 20.0);
}

TEST(ClusterTest, ParallelismBoundsMakespan) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 4;
  Cluster cluster("c", opts, &clock);
  const TaskBagResult r = cluster.RunTasks(0, std::vector<double>(8, 5.0));
  EXPECT_EQ(r.end_time, 10);  // 8 tasks / 4 slots * 5s
}

TEST(ClusterTest, ContentionAcrossJobs) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 1;
  Cluster cluster("c", opts, &clock);
  (void)cluster.RunTasks(0, {100.0});
  const TaskBagResult later = cluster.RunTasks(10, {1.0});
  // Must wait for the first job's task to finish.
  EXPECT_EQ(later.end_time, 101);
  EXPECT_GT(later.queue_wait_seconds, 0);
}

TEST(ClusterTest, GbHoursAccounting) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 8;
  opts.executor_memory_gb = 64;
  Cluster cluster("c", opts, &clock);
  // 8 GB per slot; 3600 busy seconds = 8 GBHr.
  EXPECT_DOUBLE_EQ(cluster.GbHoursFor(3600.0), 8.0);
  (void)cluster.RunTasks(0, {3600.0});
  EXPECT_DOUBLE_EQ(cluster.total_gb_hours(), 8.0);
}

TEST(ClusterTest, ResetFreesSlots) {
  SimulatedClock clock(0);
  ClusterOptions opts;
  opts.executors = 1;
  opts.cores_per_executor = 1;
  Cluster cluster("c", opts, &clock);
  (void)cluster.RunTasks(0, {1000.0});
  clock.AdvanceTo(10);
  cluster.Reset();
  const TaskBagResult r = cluster.RunTasks(10, {1.0});
  EXPECT_EQ(r.end_time, 11);
}

// ----------------------------------------------------------- WritePlanner

TEST(WritePlannerTest, TunedWriterHitsTargetSize) {
  format::ColumnarFileModel model;
  Rng rng(1);
  WriterProfile tuned = TunedPipelineProfile();
  tuned.size_jitter_sigma = 0;  // exact sizes for the assertion
  const auto files = PlanWriteFiles(6 * kGiB, {}, tuned, model, &rng);
  ASSERT_FALSE(files.empty());
  // 6GiB logical ≈ 2GiB stored at ratio 3 → ~4 files of ~512MiB.
  EXPECT_LE(files.size(), 6u);
  for (const PlannedFile& f : files) {
    EXPECT_GT(f.stored_bytes, 256 * kMiB);
  }
}

TEST(WritePlannerTest, UntunedWriterSpraysSmallFiles) {
  format::ColumnarFileModel model;
  Rng rng(1);
  const auto files =
      PlanWriteFiles(1 * kGiB, {}, UntunedUserJobProfile(), model, &rng);
  EXPECT_GE(files.size(), 60u);  // ~64 tasks all flush
  int64_t small = 0;
  for (const PlannedFile& f : files) {
    if (f.stored_bytes < 128 * kMiB) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / files.size(), 0.9);
}

TEST(WritePlannerTest, SplitsAcrossPartitions) {
  format::ColumnarFileModel model;
  Rng rng(1);
  const std::vector<std::string> parts = {"p=1", "p=2", "p=3"};
  const auto files =
      PlanWriteFiles(300 * kMiB, parts, UntunedUserJobProfile(), model, &rng);
  std::set<std::string> seen;
  for (const PlannedFile& f : files) seen.insert(f.partition);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(WritePlannerTest, ZeroBytesProducesNothing) {
  format::ColumnarFileModel model;
  Rng rng(1);
  EXPECT_TRUE(PlanWriteFiles(0, {}, TunedPipelineProfile(), model, &rng)
                  .empty());
}

TEST(WritePlannerTest, TinyWriteCapsFileCount) {
  format::ColumnarFileModel model;
  Rng rng(1);
  // 1MiB write cannot produce 64 files (min chunk 256KiB → ≤4).
  const auto files =
      PlanWriteFiles(1 * kMiB, {}, UntunedUserJobProfile(), model, &rng);
  EXPECT_LE(files.size(), 4u);
  EXPECT_GE(files.size(), 1u);
}

TEST(WritePlannerTest, PlannedFileCountMatchesPlanExactly) {
  // The lazy fleet driver publishes epoch-load estimates for unhydrated
  // lanes straight from PlannedFileCount; any drift from the real plan
  // would silently break the bit-identity guarantee. Sweep the count
  // model's regimes: zero/tiny/huge sizes, coalesce boundaries, task
  // caps, partitioned and not, both profiles, several rng seeds (the rng
  // must only ever jitter sizes, never the count).
  format::ColumnarFileModel model;
  const std::vector<int64_t> sizes = {
      0,         1,          kMiB - 1,       kMiB,          13 * kMiB,
      100 * kMiB, 512 * kMiB, kGiB,          6 * kGiB,
      37 * kGiB + 12345,      512 * kGiB};
  const std::vector<size_t> partition_counts = {0, 1, 3, 7, 24};
  for (const WriterProfile& profile :
       {TunedPipelineProfile(), UntunedUserJobProfile()}) {
    for (const int64_t bytes : sizes) {
      for (const size_t parts : partition_counts) {
        std::vector<std::string> partitions;
        for (size_t p = 0; p < parts; ++p) {
          partitions.push_back("p=" + std::to_string(p));
        }
        for (const uint64_t seed : {1ull, 42ull, 9001ull}) {
          Rng rng(seed);
          const auto files =
              PlanWriteFiles(bytes, partitions, profile, model, &rng);
          EXPECT_EQ(PlannedFileCount(bytes, parts, profile, model),
                    static_cast<int64_t>(files.size()))
              << "bytes=" << bytes << " parts=" << parts
              << " coalesce=" << profile.coalesce_output << " seed=" << seed;
        }
      }
    }
  }
}

TEST(WritePlannerTest, DeterministicForSeed) {
  format::ColumnarFileModel model;
  Rng r1(9), r2(9);
  const auto a =
      PlanWriteFiles(1 * kGiB, {"p=1"}, UntunedUserJobProfile(), model, &r1);
  const auto b =
      PlanWriteFiles(1 * kGiB, {"p=1"}, UntunedUserJobProfile(), model, &r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stored_bytes, b[i].stored_bytes);
  }
}

// ------------------------------------------------------------ QueryEngine

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : dfs_(&clock_, 1),
        catalog_(&clock_, &dfs_),
        cluster_("q", MakeClusterOptions(), &clock_),
        engine_(&cluster_, &catalog_, &clock_) {
    EXPECT_TRUE(catalog_.CreateDatabase("db").ok());
    auto table = catalog_.CreateTable(
        "db", "t",
        lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    EXPECT_TRUE(table.ok());
  }

  static ClusterOptions MakeClusterOptions() {
    ClusterOptions opts;
    opts.executors = 2;
    opts.cores_per_executor = 4;
    return opts;
  }

  SimulatedClock clock_{0};
  storage::DistributedFileSystem dfs_;
  catalog::Catalog catalog_;
  Cluster cluster_;
  QueryEngine engine_;
};

TEST_F(EngineFixture, WriteCreatesFilesAndCommits) {
  WriteSpec spec;
  spec.table = "db.t";
  spec.logical_bytes = 256 * kMiB;
  spec.partitions = {"m=2024-01"};
  auto result = engine_.ExecuteWrite(spec, 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->files_written, 0);
  EXPECT_FALSE(result->conflict_failed);
  auto meta = catalog_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), result->files_written);
  // Storage layer holds the same files.
  EXPECT_EQ(dfs_.AggregateStats().file_count, result->files_written);
}

TEST_F(EngineFixture, ReadCostScalesWithFileCount) {
  // Fragmented write.
  WriteSpec frag;
  frag.table = "db.t";
  frag.logical_bytes = 512 * kMiB;
  frag.partitions = {"m=2024-01"};
  frag.profile = UntunedUserJobProfile();
  ASSERT_TRUE(engine_.ExecuteWrite(frag, 0).ok());
  auto fragmented = engine_.ExecuteRead("db.t", std::nullopt, kMinute);
  ASSERT_TRUE(fragmented.ok());

  // Same data volume, tuned write, fresh table.
  auto table2 = catalog_.CreateTable(
      "db", "t2", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
      lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
  ASSERT_TRUE(table2.ok());
  WriteSpec tuned = frag;
  tuned.table = "db.t2";
  tuned.profile = TunedPipelineProfile();
  ASSERT_TRUE(engine_.ExecuteWrite(tuned, 2 * kHour).ok());
  auto compact = engine_.ExecuteRead("db.t2", std::nullopt, 3 * kHour);
  ASSERT_TRUE(compact.ok());

  EXPECT_GT(fragmented->files_scanned, compact->files_scanned * 4);
  EXPECT_GT(fragmented->total_seconds, compact->total_seconds);
}

TEST_F(EngineFixture, PartitionScanPrunes) {
  WriteSpec spec;
  spec.table = "db.t";
  spec.logical_bytes = 128 * kMiB;
  spec.partitions = {"m=2024-01", "m=2024-02"};
  ASSERT_TRUE(engine_.ExecuteWrite(spec, 0).ok());
  auto full = engine_.ExecuteRead("db.t", std::nullopt, kMinute);
  auto pruned =
      engine_.ExecuteRead("db.t", std::string("m=2024-01"), 2 * kMinute);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->files_scanned, full->files_scanned);
}

TEST_F(EngineFixture, OverwriteReplacesSomeFiles) {
  WriteSpec initial;
  initial.table = "db.t";
  initial.logical_bytes = 256 * kMiB;
  initial.partitions = {"m=2024-01"};
  ASSERT_TRUE(engine_.ExecuteWrite(initial, 0).ok());
  const int64_t before = (*catalog_.LoadTable("db.t"))->live_file_count();

  WriteSpec over;
  over.table = "db.t";
  over.kind = WriteKind::kOverwrite;
  over.logical_bytes = 32 * kMiB;
  over.partitions = {"m=2024-01"};
  over.replace_fraction = 0.3;
  auto result = engine_.ExecuteWrite(over, kHour);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->files_replaced, 0);
  EXPECT_GT(result->files_written, 0);
  auto meta = catalog_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(),
            before - result->files_replaced + result->files_written);
}

TEST_F(EngineFixture, WriteToMissingTableFails) {
  WriteSpec spec;
  spec.table = "db.ghost";
  spec.logical_bytes = kMiB;
  EXPECT_TRUE(engine_.ExecuteWrite(spec, 0).status().IsNotFound());
}

TEST_F(EngineFixture, ReadOfMissingTableFails) {
  EXPECT_TRUE(
      engine_.ExecuteRead("db.ghost", std::nullopt, 0).status().IsNotFound());
}

// ------------------------------------------------------- CompactionRunner

class CompactionFixture : public EngineFixture {
 protected:
  CompactionFixture()
      : compaction_cluster_("c", MakeClusterOptions(), &clock_),
        runner_(&compaction_cluster_, &catalog_, &clock_) {}

  void Fragment(const std::string& partition, int64_t logical = 512 * kMiB) {
    WriteSpec spec;
    spec.table = "db.t";
    spec.logical_bytes = logical;
    spec.partitions = {partition};
    spec.profile = UntunedUserJobProfile();
    ASSERT_TRUE(engine_.ExecuteWrite(spec, clock_.Now()).ok());
  }

  Cluster compaction_cluster_;
  CompactionRunner runner_;
};

TEST_F(CompactionFixture, RewriteReducesFileCount) {
  Fragment("m=2024-01");
  const int64_t before = (*catalog_.LoadTable("db.t"))->live_file_count();
  CompactionRequest request;
  request.table = "db.t";
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->attempted);
  ASSERT_TRUE(result->committed) << result->status;
  EXPECT_GT(result->files_rewritten, result->files_produced);
  auto meta = catalog_.LoadTable("db.t");
  EXPECT_LT((*meta)->live_file_count(), before);
  EXPECT_GT(result->gb_hours, 0);
  EXPECT_EQ(runner_.total_committed(), 1);
}

TEST_F(CompactionFixture, CompactionSavesStorageBytes) {
  Fragment("m=2024-01");
  CompactionRequest request;
  request.table = "db.t";
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok() && result->committed);
  // Merged files re-encode at peak efficiency: fewer stored bytes.
  EXPECT_LT(result->bytes_produced, result->bytes_rewritten);
}

TEST_F(CompactionFixture, PartitionScopeOnlyTouchesThatPartition) {
  Fragment("m=2024-01");
  Fragment("m=2024-02");
  const auto before_other =
      (*catalog_.LoadTable("db.t"))->LiveFiles(std::string("m=2024-02"));
  CompactionRequest request;
  request.table = "db.t";
  request.partition = "m=2024-01";
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok() && result->committed);
  const auto after_other =
      (*catalog_.LoadTable("db.t"))->LiveFiles(std::string("m=2024-02"));
  EXPECT_EQ(before_other.size(), after_other.size());
}

TEST_F(CompactionFixture, NeverMergesAcrossPartitions) {
  Fragment("m=2024-01", 64 * kMiB);
  Fragment("m=2024-02", 64 * kMiB);
  CompactionRequest request;
  request.table = "db.t";  // table scope over both partitions
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok() && result->committed);
  for (const lst::DataFile& f : (*catalog_.LoadTable("db.t"))->LiveFiles()) {
    // Every output carries exactly one partition key.
    EXPECT_TRUE(f.partition == "m=2024-01" || f.partition == "m=2024-02");
  }
  // At least one output per partition (no cross-partition merge into one).
  EXPECT_GE((*catalog_.LoadTable("db.t"))->LivePartitions().size(), 2u);
}

TEST_F(CompactionFixture, NothingToDoWhenFilesAreLarge) {
  WriteSpec tuned;
  tuned.table = "db.t";
  tuned.logical_bytes = 6 * kGiB;  // packs into ~410MiB+ files (> cutoff)
  tuned.partitions = {"m=2024-01"};
  tuned.profile = TunedPipelineProfile();
  tuned.profile.size_jitter_sigma = 0;
  ASSERT_TRUE(engine_.ExecuteWrite(tuned, 0).ok());
  CompactionRequest request;
  request.table = "db.t";
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->attempted);
  EXPECT_FALSE(result->committed);
}

TEST_F(CompactionFixture, ConcurrentOverwriteAbortsInflightCompaction) {
  // Prepare/Finalize splits the rewrite so a user overwrite can land in
  // between — this is the mechanism behind Table 1's cluster-side
  // conflicts.
  Fragment("m=2024-01");
  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok());
  ASSERT_TRUE(pending->result.attempted);

  // A user overwrite removes some of the rewrite's input files while the
  // rewrite is "running".
  WriteSpec over;
  over.table = "db.t";
  over.kind = WriteKind::kOverwrite;
  over.logical_bytes = 16 * kMiB;
  over.partitions = {"m=2024-01"};
  over.replace_fraction = 0.5;
  auto write = engine_.ExecuteWrite(over, kHour + kMinute);
  ASSERT_TRUE(write.ok());
  ASSERT_GT(write->files_replaced, 0);

  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.conflict) << result.status;
  EXPECT_EQ(runner_.total_conflicts(), 1);
  // The conflicted rewrite's outputs were cleaned up: every live file in
  // storage belongs to the table's current snapshot.
  for (const lst::DataFile& f : (*catalog_.LoadTable("db.t"))->LiveFiles()) {
    EXPECT_TRUE(dfs_.Exists(f.path));
  }
}

TEST_F(CompactionFixture, ConcurrentAppendDoesNotAbortCompaction) {
  Fragment("m=2024-01");
  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok() && pending->result.attempted);
  // An append lands mid-rewrite: harmless.
  Fragment("m=2024-01", 16 * kMiB);
  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  EXPECT_TRUE(result.committed) << result.status;
}

TEST_F(CompactionFixture, SnapshotScopeCompactsOnlyFreshFiles) {
  Fragment("m=2024-01");
  const int64_t snap =
      (*catalog_.LoadTable("db.t"))->current_snapshot_id();
  Fragment("m=2024-02");
  CompactionRequest request;
  request.table = "db.t";
  request.after_snapshot_id = snap;
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok() && result->committed);
  // Old partition untouched: still fragmented.
  const auto old_files =
      (*catalog_.LoadTable("db.t"))->LiveFiles(std::string("m=2024-01"));
  EXPECT_GT(old_files.size(), 10u);
}

TEST_F(CompactionFixture, GbHoursCoverReadAndWriteWork) {
  Fragment("m=2024-01");
  CompactionRequest request;
  request.table = "db.t";
  auto result = runner_.Run(request, kHour);
  ASSERT_TRUE(result.ok() && result->committed);
  // Measured cost covers input read + output write at the §4.2 rate; the
  // §4.2 estimate (input bytes only) is therefore a lower bound — the
  // production underestimation the paper reports.
  const double measured = result->gb_hours;
  const double estimate =
      compaction_cluster_.total_memory_gb() *
      (static_cast<double>(result->bytes_rewritten) /
       compaction_cluster_.options().rewrite_bytes_per_hour);
  const double full =
      compaction_cluster_.total_memory_gb() *
      (static_cast<double>(result->bytes_rewritten + result->bytes_produced) /
       compaction_cluster_.options().rewrite_bytes_per_hour);
  EXPECT_DOUBLE_EQ(measured, full);
  EXPECT_GT(measured, estimate);
}

// --------------------------------------- CompactionRunner under faults

class FaultedCompactionFixture : public CompactionFixture {
 protected:
  /// Installs an enabled injector with `schedule` into storage, catalog
  /// (commit site), and the runner. Called AFTER the workload is staged
  /// so scheduled hit counts start at the first compaction-path arm.
  void ArmFaults(fault::FaultSchedule schedule) {
    fault::FaultInjectorOptions options;
    options.enabled = true;
    options.schedule = std::move(schedule);
    injector_ = std::make_unique<fault::FaultInjector>(options);
    dfs_.SetFaultInjector(injector_.get());
    catalog_.SetFaultInjector(injector_.get());
    runner_.SetFaultInjector(injector_.get());
  }

  std::unique_ptr<fault::FaultInjector> injector_;
};

TEST_F(FaultedCompactionFixture, InjectedCasRaceIsRetriedWithBackoff) {
  Fragment("m=2024-01");
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteLstCommit, 1, fault::FaultKind::kCasRaceConflict);
  ArmFaults(std::move(schedule));

  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok() && pending->result.attempted);
  const SimTime end_before = pending->result.end_time;

  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  EXPECT_TRUE(result.committed) << result.status;
  EXPECT_EQ(result.commit_retries, 1);
  EXPECT_GT(result.backoff_seconds, 0.0);
  // Backoff is charged to duration, never to the simulated landing time —
  // the differential convergence contract.
  EXPECT_EQ(result.end_time, end_before);
  EXPECT_GE(result.duration_seconds, result.backoff_seconds);
  EXPECT_EQ(runner_.total_retries(), 1);
  EXPECT_EQ(runner_.total_abandoned(), 0);
  EXPECT_EQ(runner_.total_conflicts(), 0) << "a recovered race is no conflict";
}

TEST_F(FaultedCompactionFixture, BackoffIsDeterministicAcrossRuns) {
  Fragment("m=2024-01");
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteLstCommit, 1, fault::FaultKind::kCasRaceConflict);
  ArmFaults(std::move(schedule));
  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok());
  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  ASSERT_TRUE(result.committed);
  // Same (table, submit time, attempt) => the policy must reproduce the
  // identical jittered delay.
  const uint64_t key =
      CounterRng::Mix(CounterRng::HashString(request.table)) ^
      static_cast<uint64_t>(result.start_time);
  EXPECT_DOUBLE_EQ(result.backoff_seconds,
                   runner_.retry_policy().BackoffSeconds(key, 1));
}

TEST_F(FaultedCompactionFixture, InjectedValidationAbortIsTerminal) {
  Fragment("m=2024-01");
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteLstCommit, 1, fault::FaultKind::kValidationAbort);
  ArmFaults(std::move(schedule));

  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok() && pending->result.attempted);
  const std::vector<lst::DataFile> outputs = pending->outputs;
  ASSERT_FALSE(outputs.empty());

  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.conflict);
  EXPECT_TRUE(result.abandoned);
  EXPECT_EQ(result.commit_retries, 0) << "terminal aborts must not retry";
  EXPECT_EQ(runner_.total_abandoned(), 1);
  // Orphan outputs were reaped; the inputs are still the live set.
  for (const lst::DataFile& f : outputs) {
    EXPECT_FALSE(dfs_.Exists(f.path)) << f.path;
  }
  for (const lst::DataFile& f : (*catalog_.LoadTable("db.t"))->LiveFiles()) {
    EXPECT_TRUE(dfs_.Exists(f.path));
  }
}

TEST_F(FaultedCompactionFixture, RunnerCrashRewritesAndCommits) {
  Fragment("m=2024-01");
  const int64_t live_before = (*catalog_.LoadTable("db.t"))->live_file_count();
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteEngineRunner, 1, fault::FaultKind::kRunnerCrash);
  ArmFaults(std::move(schedule));

  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok() && pending->result.attempted);
  EXPECT_GT(pending->result.backoff_seconds, 0.0) << "crash retry is free?";
  EXPECT_EQ(runner_.total_retries(), 1);

  const CompactionResult result = runner_.Finalize(std::move(pending).value());
  EXPECT_TRUE(result.committed) << result.status;
  EXPECT_LT((*catalog_.LoadTable("db.t"))->live_file_count(), live_before);
  // Nothing the crashed attempt wrote survives in storage: every file is
  // either live or an input awaiting retention.
  for (const lst::DataFile& f : (*catalog_.LoadTable("db.t"))->LiveFiles()) {
    EXPECT_TRUE(dfs_.Exists(f.path));
  }
  EXPECT_EQ(runner_.total_abandoned(), 0);
}

TEST_F(FaultedCompactionFixture, RepeatedCrashesExhaustBudgetAndAbandon) {
  Fragment("m=2024-01");
  const int64_t files_before = dfs_.AggregateStats().file_count;
  fault::FaultSchedule schedule;
  // Crash every attempt the default policy (max_attempts = 4) will make.
  for (uint64_t hit = 1; hit <= 4; ++hit) {
    schedule.Add(fault::kSiteEngineRunner, hit, fault::FaultKind::kRunnerCrash);
  }
  ArmFaults(std::move(schedule));

  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->result.attempted);
  EXPECT_TRUE(pending->result.abandoned);
  EXPECT_FALSE(pending->result.status.ok());
  EXPECT_EQ(pending->result.bytes_produced, 0);
  EXPECT_EQ(runner_.total_abandoned(), 1);
  // All partial outputs of every attempt were deleted.
  EXPECT_EQ(dfs_.AggregateStats().file_count, files_before);
}

TEST_F(FaultedCompactionFixture, InjectedQuotaExhaustionAbandons) {
  Fragment("m=2024-01");
  const int64_t files_before = dfs_.AggregateStats().file_count;
  fault::FaultSchedule schedule;
  schedule.Add(fault::kSiteStorageCreate, 1, fault::FaultKind::kQuotaExceeded);
  ArmFaults(std::move(schedule));

  CompactionRequest request;
  request.table = "db.t";
  auto pending = runner_.Prepare(request, kHour);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->result.attempted);
  EXPECT_TRUE(pending->result.abandoned);
  EXPECT_TRUE(pending->result.status.IsResourceExhausted());
  EXPECT_EQ(dfs_.AggregateStats().file_count, files_before);
}

}  // namespace
}  // namespace autocomp::engine
