// Tests for merge-on-read support: delete (delta) file accumulation, the
// scan merge penalty, stats/trait visibility, and compaction fold-in.

#include <gtest/gtest.h>

#include "core/observe.h"
#include "core/traits.h"
#include "sim/environment.h"
#include "workload/tpch.h"

namespace autocomp {
namespace {

class MorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.catalog().CreateDatabase("db").ok());
    auto table = env_.catalog().CreateTable(
        "db", "t", lst::Schema(0, {{1, "d", lst::FieldType::kDate, true}}),
        lst::PartitionSpec(1, {{1, lst::Transform::kMonth, "m"}}));
    ASSERT_TRUE(table.ok());
    // Base data, tuned so only the MoR deltas are "small": 3GiB logical
    // per partition packs into ~512MiB files, above the 384MiB rewrite
    // cutoff.
    engine::WriteSpec base;
    base.table = "db.t";
    base.logical_bytes = 6 * kGiB;
    base.partitions = {"m=2024-01", "m=2024-02"};
    base.profile = engine::TunedPipelineProfile();
    base.profile.size_jitter_sigma = 0;
    ASSERT_TRUE(env_.query_engine().ExecuteWrite(base, 0).ok());
  }

  engine::WriteResult MorDelete(int64_t logical, const std::string& part) {
    engine::WriteSpec spec;
    spec.table = "db.t";
    spec.kind = engine::WriteKind::kMorDelete;
    spec.logical_bytes = logical;
    spec.partitions = {part};
    auto result = env_.query_engine().ExecuteWrite(spec, env_.clock().Now());
    EXPECT_TRUE(result.ok()) << result.status();
    env_.clock().Advance(kMinute);
    return result.ok() ? *result : engine::WriteResult{};
  }

  int64_t CountDeleteFiles() {
    int64_t n = 0;
    for (const lst::DataFile& f :
         (*env_.catalog().LoadTable("db.t"))->LiveFiles()) {
      if (f.content == lst::FileContent::kPositionDeletes) ++n;
    }
    return n;
  }

  sim::SimEnvironment env_;
};

TEST_F(MorTest, MorDeletesAppendDeltaFiles) {
  const int64_t live_before =
      (*env_.catalog().LoadTable("db.t"))->live_file_count();
  auto result = MorDelete(4 * kMiB, "m=2024-01");
  EXPECT_GT(result.files_written, 0);
  EXPECT_EQ(result.files_replaced, 0);  // MoR never rewrites data files
  EXPECT_EQ(CountDeleteFiles(), result.files_written);
  EXPECT_EQ((*env_.catalog().LoadTable("db.t"))->live_file_count(),
            live_before + result.files_written);
}

TEST_F(MorTest, DeltaFilesAccumulateAndSlowScans) {
  auto clean = env_.query_engine().ExecuteRead("db.t", std::nullopt, kMinute);
  ASSERT_TRUE(clean.ok());
  for (int i = 0; i < 10; ++i) MorDelete(4 * kMiB, "m=2024-01");
  EXPECT_GE(CountDeleteFiles(), 10);
  auto laden =
      env_.query_engine().ExecuteRead("db.t", std::nullopt, env_.clock().Now());
  ASSERT_TRUE(laden.ok());
  // Every delta adds an open + a merge penalty.
  EXPECT_GT(laden->total_seconds, clean->total_seconds);
  EXPECT_GT(laden->files_scanned, clean->files_scanned);
}

TEST_F(MorTest, StatsAndTraitSeeDeleteFiles) {
  for (int i = 0; i < 3; ++i) MorDelete(4 * kMiB, "m=2024-01");
  core::StatsCollector collector(&env_.catalog(), &env_.control_plane(),
                                 &env_.clock());
  core::Candidate candidate;
  candidate.table = "db.t";
  auto stats = collector.Collect(candidate);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->delete_file_count, CountDeleteFiles());
  core::ObservedCandidate observed{candidate, std::move(stats).value()};
  EXPECT_DOUBLE_EQ(core::DeleteFileCountTrait().Compute(observed),
                   static_cast<double>(CountDeleteFiles()));
}

TEST_F(MorTest, CompactionFoldsDeletesAway) {
  const int64_t records_before =
      (*env_.catalog().LoadTable("db.t"))->LiveFiles()[0].record_count;
  (void)records_before;
  int64_t deleted_records = 0;
  for (int i = 0; i < 5; ++i) {
    deleted_records += MorDelete(8 * kMiB, "m=2024-01").files_written > 0
                           ? 8 * kMiB / 256  // records per logical write
                           : 0;
  }
  ASSERT_GT(CountDeleteFiles(), 0);

  engine::CompactionRequest request;
  request.table = "db.t";
  request.partition = "m=2024-01";
  auto result = env_.compaction_runner().Run(request, env_.clock().Now());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->committed) << result->status;
  // All delta files in the partition are gone.
  EXPECT_EQ(CountDeleteFiles(), 0);
  // The folded data lost the masked rows: record count dropped.
  int64_t records_after = 0;
  int64_t data_files = 0;
  for (const lst::DataFile& f :
       (*env_.catalog().LoadTable("db.t"))
           ->LiveFiles(std::string("m=2024-01"))) {
    EXPECT_EQ(f.content, lst::FileContent::kData);
    records_after += f.record_count;
    ++data_files;
  }
  EXPECT_GT(data_files, 0);
  EXPECT_GT(records_after, 0);
}

TEST_F(MorTest, FoldInRewritesLargeDataFilesToo) {
  // Data files above the small-file cutoff still get rewritten when their
  // partition carries delete files (Iceberg drops a delete file only when
  // every data file it may reference is rewritten).
  MorDelete(4 * kMiB, "m=2024-02");
  const auto before =
      (*env_.catalog().LoadTable("db.t"))->LiveFiles(std::string("m=2024-02"));
  bool has_large = false;
  for (const lst::DataFile& f : before) {
    if (f.content == lst::FileContent::kData &&
        f.file_size_bytes >= 384 * kMiB) {
      has_large = true;
    }
  }
  engine::CompactionRequest request;
  request.table = "db.t";
  request.partition = "m=2024-02";
  auto result = env_.compaction_runner().Run(request, env_.clock().Now());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->committed) << result->status;
  EXPECT_EQ(CountDeleteFiles(), 0);
  // If the partition had a large data file, it must have been rewritten.
  if (has_large) {
    for (const lst::DataFile& f :
         (*env_.catalog().LoadTable("db.t"))
             ->LiveFiles(std::string("m=2024-02"))) {
      EXPECT_NE(f.path.find("compact-"), std::string::npos) << f.path;
    }
  }
}

TEST_F(MorTest, PartitionWithoutDeletesKeepsLargeFiles) {
  // Control: partitions with no delta files keep their well-sized files.
  MorDelete(4 * kMiB, "m=2024-01");
  engine::CompactionRequest request;
  request.table = "db.t";  // table scope
  auto result = env_.compaction_runner().Run(request, env_.clock().Now());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->committed);
  bool kept_original = false;
  for (const lst::DataFile& f :
       (*env_.catalog().LoadTable("db.t"))
           ->LiveFiles(std::string("m=2024-02"))) {
    if (f.path.find("part-") != std::string::npos &&
        f.file_size_bytes >= 384 * kMiB) {
      kept_original = true;
    }
  }
  EXPECT_TRUE(kept_original);
}

}  // namespace
}  // namespace autocomp
