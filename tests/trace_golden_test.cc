// Golden-trace regression tests (the ISSUE's tentpole lock-down).
//
// A fixed-seed two-day fleet replay is bit-deterministic (NFR2), so the
// order-insensitive digest of its full-detail trace is a constant: any
// behavioural drift anywhere in the stack — candidate generation,
// ranking, retry/backoff, commit/conflict handling, the NameNode load
// model — changes the digest and fails the golden comparison. The same
// digest must also be identical across shard counts and pool sizes,
// which pins the shard-parallel driver to the sequential reference.
//
// When a change *intentionally* alters behaviour, regenerate the golden
// (see CONTRIBUTING.md):
//
//   ./trace_golden_test --update-golden
//
// and commit the updated tests/golden/trace_digest.txt with the change
// that explains it.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sim/fleet_driver.h"
#include "sim/presets.h"

namespace autocomp::sim {
namespace {

bool g_update_golden = false;

bool TracingCompiledOut() {
  obs::TraceRecorder::Options options;
  options.level = obs::TraceLevel::kFull;
  return !obs::TraceRecorder(options).enabled(obs::TraceLevel::kPhases);
}

/// The pinned scenario. Every knob is explicit: the golden digest is a
/// contract, and silently inheriting a default that later changes would
/// make the test fail for the wrong reason.
FleetSimOptions GoldenOptions() {
  FleetSimOptions options;
  options.days = 2;
  options.seed = 7;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 8;
  options.fleet.seed = 77;
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 5;
  options.preset = preset;
  options.trace_level = obs::TraceLevel::kFull;
  return options;
}

obs::TraceDigest RunFleet(int shards, int pool_workers) {
  std::unique_ptr<ThreadPool> pool;
  if (pool_workers > 0) pool = std::make_unique<ThreadPool>(pool_workers);
  FleetSimOptions options = GoldenOptions();
  options.sharded = true;
  options.shards = shards;
  options.pool = pool.get();
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result->trace_digest : obs::TraceDigest{};
}

/// Sequential-reference digest, computed once per process.
const obs::TraceDigest& SeqDigest() {
  static const obs::TraceDigest digest = RunFleet(/*shards=*/1,
                                                  /*pool_workers=*/0);
  return digest;
}

/// First non-comment, non-blank line of the golden file.
std::string ReadGolden(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (!line.empty() && line[0] != '#') return line;
  }
  return "";
}

void WriteGolden(const std::string& path, const std::string& digest_line) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << "# Golden trace digest for the fixed-seed two-day fleet replay\n"
         "# pinned in tests/trace_golden_test.cc (GoldenOptions).\n"
         "# Regenerate after an INTENTIONAL behaviour change with:\n"
         "#   ./trace_golden_test --update-golden\n"
      << digest_line << "\n";
}

TEST(TraceGoldenTest, DigestMatchesCheckedInGolden) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  const obs::TraceDigest& digest = SeqDigest();
  ASSERT_GT(digest.events, 0) << "golden run recorded no events";
  const std::string actual = digest.ToString();
  const std::string golden_path = AUTOCOMP_GOLDEN_FILE;
  if (g_update_golden) {
    WriteGolden(golden_path, actual);
    std::printf("updated %s to %s\n", golden_path.c_str(), actual.c_str());
    return;
  }
  const std::string expected = ReadGolden(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing golden at " << golden_path
      << " — run ./trace_golden_test --update-golden to create it";
  EXPECT_EQ(actual, expected)
      << "the fixed-seed replay's trace drifted from the checked-in "
         "golden. If the behaviour change is intentional, regenerate "
         "with ./trace_golden_test --update-golden and commit the new "
         "digest alongside the change that explains it.";
}

/// NFR2 lock-down: the digest is a pure function of the scenario, never
/// of how the fleet was scheduled — any shard count, any pool size.
TEST(TraceGoldenTest, DigestInvariantAcrossShardsAndPools) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  const obs::TraceDigest& seq = SeqDigest();
  ASSERT_GT(seq.events, 0);
  const struct {
    int shards;
    int pool_workers;
  } configs[] = {{1, 2}, {4, 0}, {4, 2}, {8, 4}};
  for (const auto& config : configs) {
    const obs::TraceDigest digest =
        RunFleet(config.shards, config.pool_workers);
    EXPECT_EQ(digest, seq)
        << "digest diverged at shards=" << config.shards
        << " pool=" << config.pool_workers << ": " << digest.ToString()
        << " vs sequential " << seq.ToString();
  }
}

}  // namespace
}  // namespace autocomp::sim

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      autocomp::sim::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
