// Differential lock-down for the composable policy decomposition
// (core/policy.h): the pipeline assembled from policy primitives under
// the DEFAULT PolicySpec must reproduce the pre-decomposition pipeline
// bit for bit — same PipelineRunReports, same metrics (per series, per
// hour, per sample, Equals + ContentHash), same golden trace digest —
// across seeds, shard counts, and pool sizes. A non-default policy must
// conversely CHANGE behaviour (the axes are wired, not decorative).

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/policy.h"
#include "engine/write_planner.h"
#include "sim/driver.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/tpch.h"

namespace autocomp::sim {
namespace {

// --------------------------------------------------------- single-env

/// Two identical single-table environments: one service built the
/// legacy way (no policy), one through the policy path with Default().
/// Every field of every run report must match.
void ExpectReportsEqual(const core::PipelineRunReport& a,
                        const core::PipelineRunReport& b) {
  EXPECT_EQ(a.started_at, b.started_at);
  EXPECT_EQ(a.candidates_generated, b.candidates_generated);
  EXPECT_EQ(a.dropped_pre_orient, b.dropped_pre_orient);
  EXPECT_EQ(a.dropped_post_orient, b.dropped_post_orient);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].candidate().id(), b.ranked[i].candidate().id());
    EXPECT_EQ(a.ranked[i].score, b.ranked[i].score);
    EXPECT_EQ(a.ranked[i].traited.traits, b.ranked[i].traited.traits);
  }
  ASSERT_EQ(a.selected.size(), b.selected.size());
  for (size_t i = 0; i < a.selected.size(); ++i) {
    EXPECT_EQ(a.selected[i].candidate().id(), b.selected[i].candidate().id());
    EXPECT_EQ(a.selected[i].score, b.selected[i].score);
  }
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (size_t i = 0; i < a.executed.size(); ++i) {
    const engine::CompactionResult& ra = a.executed[i].result;
    const engine::CompactionResult& rb = b.executed[i].result;
    EXPECT_EQ(a.executed[i].candidate.id(), b.executed[i].candidate.id());
    EXPECT_EQ(ra.committed, rb.committed);
    EXPECT_EQ(ra.files_rewritten, rb.files_rewritten);
    EXPECT_EQ(ra.files_produced, rb.files_produced);
    EXPECT_EQ(ra.bytes_rewritten, rb.bytes_rewritten);
    EXPECT_EQ(ra.bytes_produced, rb.bytes_produced);
    EXPECT_EQ(ra.gb_hours, rb.gb_hours);
    EXPECT_EQ(ra.end_time, rb.end_time);
  }
  EXPECT_EQ(a.feedback.size(), b.feedback.size());
}

core::PipelineRunReport RunSingleEnv(const StrategyPreset& preset) {
  SimEnvironment env;
  EXPECT_TRUE(workload::SetupTpchDatabase(&env.catalog(), &env.query_engine(),
                                          "db", kGiB,
                                          engine::UntunedUserJobProfile(), 0)
                  .ok());
  auto service = MakeMoopService(&env, preset);
  env.clock().AdvanceTo(kHour);
  auto report = service->RunNow();
  EXPECT_TRUE(report.ok()) << report.status();
  return report.ok() ? std::move(*report) : core::PipelineRunReport{};
}

TEST(PolicyDiffTest, DefaultSpecReportMatchesLegacyPipeline) {
  StrategyPreset legacy;
  legacy.scope = ScopeStrategy::kTable;
  legacy.k = 10;

  StrategyPreset decomposed = legacy;
  decomposed.policy = core::PolicySpec::Default();

  const core::PipelineRunReport a = RunSingleEnv(legacy);
  const core::PipelineRunReport b = RunSingleEnv(decomposed);
  ASSERT_GT(a.candidates_generated, 0);
  EXPECT_GT(a.executed.size(), 0u);
  ExpectReportsEqual(a, b);
}

// ------------------------------------------------------------- fleet

FleetSimOptions PolicyFleet(uint64_t seed) {
  FleetSimOptions options;
  options.days = 2;
  options.seed = seed;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 3;
  options.fleet.new_tables_per_day = 2;
  options.fleet.seed = 77;
  options.env.namenode.rpc_capacity_per_hour = 200;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  // The pipeline_*_ms host-wall-clock profiling series are the one
  // legitimately nondeterministic metric family; bit-identity is
  // asserted over everything else.
  options.driver.record_host_timings = false;
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 5;
  options.preset = preset;
  return options;
}

FleetSimResult RunFleet(FleetSimOptions options) {
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : FleetSimResult{};
}

TEST(PolicyDiffTest, DefaultSpecBitIdenticalAcrossSeedsShardsAndPools) {
  for (const uint64_t seed : {7ull, 99ull}) {
    FleetSimOptions legacy_options = PolicyFleet(seed);
    legacy_options.sharded = false;
    const FleetSimResult legacy = RunFleet(std::move(legacy_options));
    ASSERT_GT(legacy.events_executed, 0);
    const uint64_t legacy_hash = legacy.metrics.ContentHash();
    for (const int shards : {1, 4, 8}) {
      for (const int workers : {0, 2, 4}) {
        std::unique_ptr<ThreadPool> pool;
        if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
        FleetSimOptions options = PolicyFleet(seed);
        options.preset->policy = core::PolicySpec::Default();
        options.sharded = true;
        options.shards = shards;
        options.pool = pool.get();
        const FleetSimResult decomposed = RunFleet(std::move(options));
        std::string why;
        EXPECT_TRUE(legacy.metrics.Equals(decomposed.metrics, &why))
            << "seed=" << seed << " shards=" << shards
            << " workers=" << workers << ": " << why;
        EXPECT_EQ(legacy_hash, decomposed.metrics.ContentHash());
        EXPECT_EQ(legacy.events_executed, decomposed.events_executed);
        EXPECT_EQ(legacy.total_files, decomposed.total_files);
      }
    }
  }
}

TEST(PolicyDiffTest, NonDefaultPolicyActuallyChangesBehavior) {
  // Guard against silently-unwired axes: a full-rewrite policy must
  // diverge from the default partial rewrite on the same fleet.
  FleetSimOptions no_service_options = PolicyFleet(7);
  no_service_options.sharded = false;
  no_service_options.preset.reset();
  const FleetSimResult no_service = RunFleet(std::move(no_service_options));

  FleetSimOptions default_options = PolicyFleet(7);
  default_options.sharded = false;
  const FleetSimResult with_default = RunFleet(std::move(default_options));
  ASSERT_LT(with_default.total_files, no_service.total_files)
      << "the service never compacted; the comparison would be vacuous";

  FleetSimOptions full_options = PolicyFleet(7);
  full_options.sharded = false;
  auto spec = core::PolicySpec::Parse(
      "trigger=periodic;granularity=table;movement=full;picker=moop");
  ASSERT_TRUE(spec.ok()) << spec.status();
  full_options.preset->policy = *spec;
  const FleetSimResult with_full = RunFleet(std::move(full_options));
  EXPECT_NE(with_default.metrics.ContentHash(),
            with_full.metrics.ContentHash())
      << "movement=full produced byte-identical metrics — the policy "
         "axes are not reaching the execution path";
}

// ------------------------------------------------------------- golden

bool TracingCompiledOut() {
  obs::TraceRecorder::Options options;
  options.level = obs::TraceLevel::kFull;
  return !obs::TraceRecorder(options).enabled(obs::TraceLevel::kPhases);
}

/// First non-comment, non-blank line of the golden file.
std::string ReadGolden(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (!line.empty() && line[0] != '#') return line;
  }
  return "";
}

TEST(PolicyDiffTest, DefaultSpecPreservesGoldenTraceDigest) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  // The exact scenario pinned in tests/trace_golden_test.cc
  // (GoldenOptions), with the preset routed through the policy path.
  FleetSimOptions options;
  options.days = 2;
  options.seed = 7;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 8;
  options.fleet.seed = 77;
  StrategyPreset preset;
  preset.scope = ScopeStrategy::kTable;
  preset.k = 5;
  preset.policy = core::PolicySpec::Default();
  options.preset = preset;
  options.trace_level = obs::TraceLevel::kFull;
  options.sharded = true;
  options.shards = 1;
  const FleetSimResult result = RunFleet(std::move(options));
  ASSERT_GT(result.trace_digest.events, 0);
  const std::string expected = ReadGolden(AUTOCOMP_GOLDEN_FILE);
  ASSERT_FALSE(expected.empty()) << "missing golden " << AUTOCOMP_GOLDEN_FILE;
  EXPECT_EQ(result.trace_digest.ToString(), expected)
      << "the Default() policy spec changed the golden trace — the "
         "decomposition is not byte-transparent";
}

}  // namespace
}  // namespace autocomp::sim
