// Driver-scheduling and shard-parallel replay tests: deferred-compaction
// finalize ordering (min-heap discipline), end-of-run orphan flushing,
// counter-based RNG / epoch-load invariants, deterministic metrics
// merge/equality, and the NFR2 bar for the fleet driver — bit-identical
// metrics for sequential vs sharded runs across seeds, shard counts and
// pool sizes. Labeled "concurrency" so TSan builds cover the parallel
// shard advancement.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/counter_rng.h"
#include "common/thread_pool.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "storage/epoch_load.h"
#include "workload/fleet.h"
#include "workload/tpch.h"

namespace autocomp::sim {
namespace {

// ------------------------------------------------------------ CounterRng

TEST(CounterRngTest, PureFunctionOfInputs) {
  const uint64_t key = CounterRng::HashString("/data/db/t/f1.parquet");
  const double a = CounterRng::Uniform01(7, key, 3);
  // Unrelated draws in between must not affect the stream.
  (void)CounterRng::Uniform01(7, key, 4);
  (void)CounterRng::Uniform01(9, CounterRng::HashString("other"), 0);
  EXPECT_EQ(a, CounterRng::Uniform01(7, key, 3));
}

TEST(CounterRngTest, StreamsAreDistinctAndUniform) {
  const uint64_t key = CounterRng::HashString("path");
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = CounterRng::Uniform01(7, key, static_cast<uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
  EXPECT_NE(CounterRng::Uniform01(7, key, 0), CounterRng::Uniform01(8, key, 0));
  EXPECT_NE(CounterRng::Uniform01(7, key, 0),
            CounterRng::Uniform01(7, CounterRng::HashString("path2"), 0));
}

// ------------------------------------------------------------- EpochLoad

TEST(EpochLoadModelTest, ServesNewestCompletedHour) {
  storage::NameNodeOptions options;
  options.rpc_capacity_per_hour = 1000;
  storage::EpochLoadModel model(options);
  EXPECT_EQ(model.LoadAt(10 * kMinute), 0);  // nothing published yet
  model.PublishHour(0, 500);
  // During hour 1 the epoch-start view is hour 0's tally.
  EXPECT_EQ(model.LoadAt(kHour + kMinute), 500);
  // Within hour 0 itself nothing earlier exists.
  EXPECT_EQ(model.LoadAt(30 * kMinute), 0);
  model.PublishHour(kHour, 2500);
  EXPECT_EQ(model.LoadAt(2 * kHour + 1), 2500);
  // Hours without a publish fall back to the newest one before them.
  EXPECT_EQ(model.LoadAt(5 * kHour), 2500);
}

TEST(EpochLoadModelTest, TimeoutProbabilityRampsWithLoad) {
  storage::NameNodeOptions options;
  options.rpc_capacity_per_hour = 1000;
  storage::EpochLoadModel model(options);
  EXPECT_EQ(model.TimeoutProbabilityAt(kHour), 0.0);  // no load published
  model.PublishHour(0, options.rpc_capacity_per_hour / 2);
  EXPECT_EQ(model.TimeoutProbabilityAt(kHour), 0.0);  // under capacity
  model.PublishHour(kHour, options.rpc_capacity_per_hour * 100);
  EXPECT_GT(model.TimeoutProbabilityAt(2 * kHour), 0.0);
  EXPECT_LE(model.TimeoutProbabilityAt(2 * kHour),
            options.max_timeout_probability);
}

// -------------------------------------------------------- Metrics compare

TEST(MetricsEqualityTest, DetectsDivergence) {
  MetricsRecorder a;
  MetricsRecorder b;
  a.Record("files", 0, 100);
  b.Record("files", 0, 100);
  EXPECT_TRUE(a.Equals(b));
  b.Record("files", kHour, 90);
  std::string why;
  EXPECT_FALSE(a.Equals(b, &why));
  EXPECT_NE(why.find("files"), std::string::npos);
  a.Record("files", kHour, 91);
  EXPECT_FALSE(a.Equals(b));
}

TEST(MetricsEqualityTest, IgnoresInternedButEmptyMetrics) {
  MetricsRecorder a;
  MetricsRecorder b;
  (void)a.Intern("never_recorded");
  a.Increment("conflicts", kMinute);
  b.Increment("conflicts", kMinute);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_TRUE(b.Equals(a));
}

TEST(MetricsEqualityTest, ContentHashTracksEquality) {
  MetricsRecorder a;
  MetricsRecorder b;
  a.Record("files", 0, 100);
  a.Increment("conflicts", kMinute, 2);
  a.Observe("latency", kHour, 12.5);
  b.Record("files", 0, 100);
  b.Increment("conflicts", kMinute, 2);
  b.Observe("latency", kHour, 12.5);
  (void)b.Intern("never_recorded");  // empty slots must not perturb it
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b.Record("files", kHour, 90);
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(MetricsMergeTest, LaneMergeMatchesSingleRecorder) {
  // Record the same logical stream once into one recorder and once split
  // across two lanes; the lane-order merge must reproduce it exactly.
  MetricsRecorder whole;
  MetricsRecorder lane0;
  MetricsRecorder lane1;
  whole.Record("files", 0, 10);
  whole.Record("files", kHour, 20);
  whole.Record("files", kHour, 30);  // same-time points keep lane order
  whole.Observe("lat", kMinute, 1.5);
  whole.Observe("lat", kMinute, 0.5);
  whole.Increment("conflicts", kMinute, 2);
  lane0.Record("files", 0, 10);
  lane0.Record("files", kHour, 20);
  lane1.Record("files", kHour, 30);
  lane1.Observe("lat", kMinute, 1.5);
  lane0.Observe("lat", kMinute, 0.5);
  lane0.Increment("conflicts", kMinute);
  lane1.Increment("conflicts", kMinute);
  const MetricsRecorder merged = MetricsRecorder::Merge({&lane0, &lane1});
  std::string why;
  EXPECT_TRUE(merged.Equals(whole, &why)) << why;
  ASSERT_EQ(merged.Series("files").size(), 3u);
  EXPECT_EQ(merged.Series("files")[1].value, 20);
  EXPECT_EQ(merged.TotalCount("conflicts"), 2);
}

// ----------------------------------------- deferred compaction ordering

std::unique_ptr<core::AutoCompService> MakeDeferredService(
    SimEnvironment* env, ScopeStrategy scope, int64_t k) {
  StrategyPreset preset;
  preset.scope = scope;
  preset.k = k;
  preset.deferred_act = true;
  return MakeMoopService(env, preset);
}

TEST(DeferredQueueTest, FinalizesInEndTimeOrder) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 6 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  auto service = MakeDeferredService(&env, ScopeStrategy::kPartition, 20);
  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run({}, 6 * kHour).ok());
  // Every finalized unit appends one compaction_gbhr point at its end
  // time; the min-heap must pop them in non-decreasing time order.
  const auto& series = metrics.Series("compaction_gbhr");
  ASSERT_GT(series.size(), 1u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].time, series[i - 1].time)
        << "finalize order regressed at point " << i;
  }
}

TEST(DeferredQueueTest, WithinTableUnitsStaySequenced) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 6 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  auto service = MakeDeferredService(&env, ScopeStrategy::kPartition, 20);
  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run({}, 6 * kHour).ok());
  // Strict table-level validation + within-table serialization: no unit
  // of the same table may overlap another, so no cluster conflicts.
  EXPECT_GT(metrics.TotalCount("compaction_commits"), 5);
  EXPECT_EQ(metrics.TotalCount("cluster_conflicts"), 0);
}

// Flushing must commit or abort every inflight unit: afterwards all live
// metadata points at existing storage files and commits were recorded.
void FinishRunAndCheck(EventDriver* driver, SimEnvironment* env,
                       MetricsRecorder* metrics) {
  driver->FinishRun();
  EXPECT_GT(metrics->TotalCount("compaction_commits") +
                metrics->TotalCount("cluster_conflicts"),
            0);
  for (const std::string& name : env->catalog().ListAllTables()) {
    auto meta = env->catalog().LoadTable(name);
    ASSERT_TRUE(meta.ok());
    for (const lst::DataFile& f : (*meta)->LiveFiles()) {
      EXPECT_TRUE(env->dfs().Exists(f.path)) << f.path;
    }
  }
  // A second FinishRun is a no-op on an already-drained heap.
  driver->FinishRun();
}

TEST(DeferredQueueTest, FinishRunFlushesOrphans) {
  SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", 8 * kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  auto service = MakeDeferredService(&env, ScopeStrategy::kTable, 5);
  MetricsRecorder metrics;
  DriverOptions options;
  options.deferred_compaction = true;
  EventDriver driver(&env, &metrics, options);
  driver.AttachService(service.get());
  // Stop right after the trigger, while rewrites are inflight, using the
  // incremental API the fleet driver uses (AdvanceTo + FinishRun instead
  // of Run).
  ASSERT_TRUE(driver.AdvanceTo(kHour + kMinute).ok());
  FinishRunAndCheck(&driver, &env, &metrics);
}

// ------------------------------------------------- shard-parallel fleet

FleetSimOptions SmallFleet(uint64_t seed) {
  FleetSimOptions options;
  options.days = 2;
  options.seed = seed;
  options.fleet.num_databases = 6;
  options.fleet.tables_per_db = 3;
  options.fleet.new_tables_per_day = 2;
  // Low capacity so fleet-wide load crosses it and the epoch-load timeout
  // path actually fires (otherwise the test would pass vacuously).
  options.env.namenode.rpc_capacity_per_hour = 200;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  return options;
}

MetricsRecorder RunFleet(FleetSimOptions options, int64_t* events_out,
                         int64_t* timeouts_out = nullptr) {
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  if (events_out != nullptr) *events_out = result->events_executed;
  if (timeouts_out != nullptr) {
    *timeouts_out = result->metrics.TotalCount("open_timeouts");
  }
  return std::move(result->metrics);
}

TEST(FleetSimulationTest, ShardAssignmentIsStableAndCompletes) {
  EXPECT_EQ(FleetSimulation::ShardOf("tenant000", 4),
            FleetSimulation::ShardOf("tenant000", 4));
  bool differs = false;
  for (int d = 0; d < 16 && !differs; ++d) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "tenant%03d", d);
    differs = FleetSimulation::ShardOf(buf, 4) !=
              FleetSimulation::ShardOf("tenant000", 4);
  }
  EXPECT_TRUE(differs) << "hash degenerated to one shard";
}

TEST(FleetSimulationTest, SequentialRunIsReproducible) {
  FleetSimOptions options = SmallFleet(7);
  options.sharded = false;
  int64_t events_a = 0;
  int64_t events_b = 0;
  const MetricsRecorder a = RunFleet(options, &events_a);
  const MetricsRecorder b = RunFleet(SmallFleet(7), &events_b);
  // Note: run B uses the default (sharded, but null pool => inline).
  std::string why;
  EXPECT_TRUE(a.Equals(b, &why)) << why;
  EXPECT_EQ(events_a, events_b);
  EXPECT_GT(events_a, 0);
}

TEST(FleetSimulationTest, TimeoutPathIsExercised) {
  int64_t events = 0;
  int64_t timeouts = 0;
  FleetSimOptions options = SmallFleet(7);
  options.sharded = false;
  (void)RunFleet(std::move(options), &events, &timeouts);
  EXPECT_GT(timeouts, 0) << "epoch-load timeout model never fired; the "
                            "determinism matrix would be vacuous";
}

TEST(FleetSimulationTest, ShardedBitIdenticalAcrossSeedsShardsAndPools) {
  for (const uint64_t seed : {7ull, 99ull}) {
    FleetSimOptions seq_options = SmallFleet(seed);
    seq_options.sharded = false;
    int64_t seq_events = 0;
    const MetricsRecorder seq = RunFleet(std::move(seq_options), &seq_events);
    for (const int shards : {1, 2, 4, 8}) {
      for (const int workers : {0, 2, 4}) {
        std::unique_ptr<ThreadPool> pool;
        if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
        FleetSimOptions options = SmallFleet(seed);
        options.sharded = true;
        options.shards = shards;
        options.pool = pool.get();
        int64_t events = 0;
        const MetricsRecorder metrics = RunFleet(std::move(options), &events);
        std::string why;
        EXPECT_TRUE(seq.Equals(metrics, &why))
            << "seed=" << seed << " shards=" << shards
            << " workers=" << workers << ": " << why;
        EXPECT_EQ(seq_events, events);
      }
    }
  }
}

FleetSimResult RunFleetFull(FleetSimOptions options) {
  FleetSimulation simulation(std::move(options));
  auto result = simulation.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(*result);
}

// The NFR2 bar for the lazy path: hydrate-on-demand + active-lane
// scheduling + delta barriers must reproduce the eager reference
// (hydrate everything, advance everything, every epoch) bit for bit —
// per series, per hour, per sample — at every shard count and pool size.
TEST(FleetSimulationTest, LazyMatchesEagerReferenceAcrossSeedsShardsAndPools) {
  for (const uint64_t seed : {7ull, 99ull}) {
    FleetSimOptions eager_options = SmallFleet(seed);
    eager_options.lane_mode = LaneMode::kAdvanceAll;
    eager_options.sharded = false;
    const FleetSimResult eager = RunFleetFull(std::move(eager_options));
    EXPECT_EQ(eager.lanes_hydrated, eager.lanes_total);
    for (const int shards : {1, 4, 8}) {
      for (const int workers : {0, 2, 4}) {
        std::unique_ptr<ThreadPool> pool;
        if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
        FleetSimOptions options = SmallFleet(seed);
        options.lane_mode = LaneMode::kActive;
        options.shards = shards;
        options.pool = pool.get();
        const FleetSimResult lazy = RunFleetFull(std::move(options));
        std::string why;
        EXPECT_TRUE(eager.metrics.Equals(lazy.metrics, &why))
            << "seed=" << seed << " shards=" << shards
            << " workers=" << workers << ": " << why;
        EXPECT_EQ(eager.metrics.ContentHash(), lazy.metrics.ContentHash());
        EXPECT_EQ(eager.events_executed, lazy.events_executed);
        EXPECT_EQ(eager.total_files, lazy.total_files);
        EXPECT_EQ(eager.open_calls, lazy.open_calls);
      }
    }
  }
}

// With a control loop attached the recorder also carries the
// pipeline_*_ms phase timings, which are *host* wall-clock measurements
// (they price the OODA loop itself) and thus legitimately differ run to
// run. Everything simulated must still match bit for bit; compare that
// deterministic surface explicitly.
void ExpectSimulatedMetricsEqual(const MetricsRecorder& a,
                                 const MetricsRecorder& b,
                                 const std::string& label) {
  for (const char* series :
       {"files_total", "compaction_gbhr", "compaction_files_reduced"}) {
    const auto& sa = a.Series(series);
    const auto& sb = b.Series(series);
    ASSERT_EQ(sa.size(), sb.size()) << label << ": " << series;
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].time, sb[i].time)
          << label << ": " << series << " index " << i;
      EXPECT_EQ(sa[i].value, sb[i].value)
          << label << ": " << series << " index " << i;
    }
  }
  for (const char* counter :
       {"compaction_commits", "cluster_conflicts", "write_queries",
        "write_failures", "client_conflicts", "read_failures",
        "open_timeouts", "stats_cache_hits", "stats_cache_misses",
        "stats_index_hits", "stats_index_fallbacks", "compaction_retries",
        "compaction_abandoned"}) {
    EXPECT_EQ(a.HourlyCounts(counter), b.HourlyCounts(counter))
        << label << ": " << counter;
  }
  for (const char* metric :
       {"write_latency_s", "read_latency_s", "compaction_backoff_s"}) {
    Sample oa = a.AllObservations(metric);
    Sample ob = b.AllObservations(metric);
    EXPECT_EQ(oa.values(), ob.values()) << label << ": " << metric;
  }
}

// Same bar with the per-lane AutoComp control loop attached: the preset
// wakes every lane at the trigger cadence, so the lazy path degrades to
// near-eager scheduling — and its simulated outputs must still match
// exactly.
TEST(FleetSimulationTest, LazyMatchesEagerWithControlLoop) {
  const auto with_preset = [](uint64_t seed) {
    FleetSimOptions options = SmallFleet(seed);
    StrategyPreset preset;
    preset.scope = ScopeStrategy::kTable;
    preset.k = 5;
    options.preset = preset;
    return options;
  };
  FleetSimOptions eager_options = with_preset(7);
  eager_options.lane_mode = LaneMode::kAdvanceAll;
  eager_options.sharded = false;
  const FleetSimResult eager = RunFleetFull(std::move(eager_options));
  for (const int shards : {1, 4}) {
    for (const int workers : {0, 2}) {
      std::unique_ptr<ThreadPool> pool;
      if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
      FleetSimOptions options = with_preset(7);
      options.lane_mode = LaneMode::kActive;
      options.shards = shards;
      options.pool = pool.get();
      const FleetSimResult lazy = RunFleetFull(std::move(options));
      const std::string label = "shards=" + std::to_string(shards) +
                                " workers=" + std::to_string(workers);
      ExpectSimulatedMetricsEqual(eager.metrics, lazy.metrics, label);
      EXPECT_EQ(eager.events_executed, lazy.events_executed) << label;
      EXPECT_EQ(eager.total_files, lazy.total_files) << label;
      EXPECT_EQ(eager.open_calls, lazy.open_calls) << label;
      // Under a preset every lane must wake for the control loop, so
      // nothing can be ghosted.
      EXPECT_EQ(lazy.lanes_ghosted, 0);
    }
  }
}

// The footprint claim behind 100×-scale replays: lanes that never have
// any work are never hydrated into environments — they share one ghost
// replay — and the results still match the eager reference exactly.
TEST(FleetSimulationTest, IdleLanesAreNeverHydrated) {
  const auto sparse_fleet = [] {
    FleetSimOptions options = SmallFleet(7);
    options.fleet.num_databases = 8;
    options.fleet.tables_per_db = 0;  // all activity comes from onboards
    options.fleet.new_tables_per_day = 1;
    return options;
  };
  FleetSimOptions eager_options = sparse_fleet();
  eager_options.lane_mode = LaneMode::kAdvanceAll;
  eager_options.sharded = false;
  const FleetSimResult eager = RunFleetFull(std::move(eager_options));
  EXPECT_EQ(eager.lanes_hydrated, 8);

  FleetSimOptions options = sparse_fleet();
  options.lane_mode = LaneMode::kActive;
  const FleetSimResult lazy = RunFleetFull(std::move(options));
  // One onboarded table per day for two days: at most two databases ever
  // see work.
  EXPECT_LE(lazy.lanes_hydrated, 2);
  EXPECT_GE(lazy.lanes_ghosted, 6);
  EXPECT_EQ(lazy.lanes_ghosted + lazy.lanes_hydrated, lazy.lanes_total);
  EXPECT_LE(lazy.peak_resident_lanes, lazy.lanes_hydrated);
  std::string why;
  EXPECT_TRUE(eager.metrics.Equals(lazy.metrics, &why)) << why;
  EXPECT_EQ(eager.events_executed, lazy.events_executed);
  EXPECT_EQ(eager.total_files, lazy.total_files);
}

}  // namespace
}  // namespace autocomp::sim
