// Unit tests for src/lst: schemas, partition transforms, table metadata,
// optimistic transactions (including the Iceberg v1.2.0 strict-conflict
// behaviour the paper documents), snapshot expiry, and metadata tables.

#include <gtest/gtest.h>

#include <map>

#include "common/clock.h"
#include "fault/fault_injector.h"
#include "lst/metadata_tables.h"
#include "lst/partition.h"
#include "lst/table.h"
#include "lst/table_metadata.h"
#include "lst/transaction.h"
#include "lst/types.h"

namespace autocomp::lst {
namespace {

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, LookupByIdAndName) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true},
                    {2, "b", FieldType::kDate, false}});
  EXPECT_EQ(schema.FindField(1)->name, "a");
  EXPECT_EQ(schema.FindFieldByName("b")->id, 2);
  EXPECT_TRUE(schema.FindField(9).status().IsNotFound());
  EXPECT_TRUE(schema.FindFieldByName("zz").status().IsNotFound());
}

TEST(SchemaTest, AddFieldEvolvesSchemaId) {
  Schema schema(3, {{1, "a", FieldType::kInt64, true}});
  auto evolved = schema.AddField({2, "b", FieldType::kString, false});
  ASSERT_TRUE(evolved.ok());
  EXPECT_EQ(evolved->schema_id(), 4);
  EXPECT_EQ(evolved->fields().size(), 2u);
  // Original untouched.
  EXPECT_EQ(schema.fields().size(), 1u);
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true}});
  EXPECT_TRUE(schema.AddField({1, "x", FieldType::kInt64, false})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(schema.AddField({2, "a", FieldType::kInt64, false})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, ToStringListsFields) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true}});
  EXPECT_NE(schema.ToString().find("a:int64"), std::string::npos);
}

// ------------------------------------------------------------- Transforms

TEST(TransformTest, CivilDateRoundTrip) {
  // 1995-03-07 and a pre-1970 date.
  const int64_t days = DaysFromCivil(1995, 3, 7);
  const CivilDate c = CivilFromDays(days);
  EXPECT_EQ(c.year, 1995);
  EXPECT_EQ(c.month, 3);
  EXPECT_EQ(c.day, 7);
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  const CivilDate epoch = CivilFromDays(0);
  EXPECT_EQ(epoch.year, 1970);
}

// Parameterized round-trip sweep across many dates.
class CivilDateRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(CivilDateRoundTrip, DaysToCivilAndBack) {
  const int64_t days = GetParam();
  const CivilDate c = CivilFromDays(days);
  EXPECT_EQ(DaysFromCivil(c.year, c.month, c.day), days);
  EXPECT_GE(c.month, 1);
  EXPECT_LE(c.month, 12);
  EXPECT_GE(c.day, 1);
  EXPECT_LE(c.day, 31);
}

INSTANTIATE_TEST_SUITE_P(DateSweep, CivilDateRoundTrip,
                         ::testing::Values(-719468, -1, 0, 1, 365, 8096,
                                           10000, 10957, 11016, 18000, 20000,
                                           25000, 40000));

TEST(TransformTest, MonthDayYearIdentity) {
  const int64_t days = DaysFromCivil(1995, 3, 7);
  EXPECT_EQ(ApplyTransform(Transform::kMonth, days), "1995-03");
  EXPECT_EQ(ApplyTransform(Transform::kDay, days), "1995-03-07");
  EXPECT_EQ(ApplyTransform(Transform::kYear, days), "1995");
  EXPECT_EQ(ApplyTransform(Transform::kIdentity, 42), "42");
}

TEST(TransformTest, BucketIsStableAndBounded) {
  const std::string b1 = ApplyTransform(Transform::kBucket, 12345, 8);
  const std::string b2 = ApplyTransform(Transform::kBucket, 12345, 8);
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b1.rfind("bucket_", 0), 0u);
}

TEST(PartitionSpecTest, PartitionKeyFor) {
  PartitionSpec spec(1, {{11, Transform::kMonth, "ship_month"}});
  const int64_t days = DaysFromCivil(1998, 12, 1);
  auto key = spec.PartitionKeyFor({days});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, "ship_month=1998-12");
  EXPECT_TRUE(spec.PartitionKeyFor({}).status().IsInvalidArgument());
}

TEST(PartitionSpecTest, UnpartitionedKeyIsEmpty) {
  PartitionSpec spec = PartitionSpec::Unpartitioned();
  EXPECT_FALSE(spec.is_partitioned());
  EXPECT_EQ(spec.PartitionKeyFor({}).value(), "");
}

TEST(PartitionSpecTest, ValidateRequiresDateForDateTransforms) {
  Schema schema(0, {{1, "v", FieldType::kInt64, true},
                    {2, "d", FieldType::kDate, true}});
  PartitionSpec ok(1, {{2, Transform::kMonth, "m"}});
  EXPECT_TRUE(ok.Validate(schema).ok());
  PartitionSpec bad(1, {{1, Transform::kMonth, "m"}});
  EXPECT_TRUE(bad.Validate(schema).IsInvalidArgument());
  PartitionSpec missing(1, {{9, Transform::kIdentity, "x"}});
  EXPECT_TRUE(missing.Validate(schema).IsNotFound());
  PartitionSpec bucket_no_count(1, {{1, Transform::kBucket, "b", 0}});
  EXPECT_TRUE(bucket_no_count.Validate(schema).IsInvalidArgument());
}

// --------------------------------------------------------- Test fixtures

/// Minimal in-memory MetadataStore for transaction tests.
class FakeStore final : public MetadataStore {
 public:
  Result<TableMetadataPtr> LoadTable(const std::string& name) const override {
    const auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound(name);
    return it->second;
  }
  Status CommitTable(const std::string& name, int64_t base_version,
                     TableMetadataPtr new_metadata) override {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound(name);
    if (it->second->version() != base_version) {
      return Status::CommitConflict("version moved");
    }
    it->second = std::move(new_metadata);
    return Status::OK();
  }
  void Put(const std::string& name, TableMetadataPtr meta) {
    tables_[name] = std::move(meta);
  }
  fault::FaultInjector* fault_injector() const override { return injector_; }
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  std::map<std::string, TableMetadataPtr> tables_;
  fault::FaultInjector* injector_ = nullptr;
};

DataFile MakeFile(const std::string& path, const std::string& partition,
                  int64_t size) {
  DataFile f;
  f.path = path;
  f.partition = partition;
  f.file_size_bytes = size;
  f.record_count = size / 100;
  return f;
}

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema(0, {{1, "d", FieldType::kDate, true}});
    PartitionSpec spec(1, {{1, Transform::kMonth, "m"}});
    TableMetadata::Builder builder("db.t", "/data/db/t", schema, spec);
    builder.SetCreatedAt(0);
    auto meta = builder.Build();
    ASSERT_TRUE(meta.ok());
    store_.Put("db.t", *meta);
  }

  Table MakeTable() { return Table(&store_, "db.t", &clock_); }

  Status AppendFiles(const std::vector<DataFile>& files) {
    Table table = MakeTable();
    auto txn = table.NewTransaction();
    AUTOCOMP_RETURN_NOT_OK(txn.status());
    AUTOCOMP_RETURN_NOT_OK(txn->Append(files));
    return txn->Commit().status();
  }

  SimulatedClock clock_{0};
  FakeStore store_;
};

// ----------------------------------------------------------- Append path

TEST_F(TransactionTest, AppendCreatesSnapshot) {
  ASSERT_TRUE(AppendFiles({MakeFile("/f1", "m=1995-01", 100),
                           MakeFile("/f2", "m=1995-02", 200)})
                  .ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), 2);
  EXPECT_EQ((*meta)->live_bytes(), 300);
  const Snapshot* snap = (*meta)->current_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->operation, SnapshotOperation::kAppend);
  EXPECT_EQ(snap->added_files, 2);
  EXPECT_EQ(snap->touched_partitions.size(), 2u);
}

TEST_F(TransactionTest, AppendStampsSnapshotIdAndSequence) {
  ASSERT_TRUE(AppendFiles({MakeFile("/f1", "p", 100)}).ok());
  ASSERT_TRUE(AppendFiles({MakeFile("/f2", "p", 100)}).ok());
  auto meta = store_.LoadTable("db.t");
  for (const DataFile& f : (*meta)->LiveFiles()) {
    EXPECT_GT(f.added_snapshot_id, 0);
    EXPECT_GT(f.sequence_number, 0);
  }
  // Second file added by a later snapshot.
  auto files = (*meta)->LiveFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].added_snapshot_id, files[1].added_snapshot_id);
}

TEST_F(TransactionTest, EmptyAppendRejected) {
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  EXPECT_TRUE(txn->Append({}).IsInvalidArgument());
}

TEST_F(TransactionTest, CommitWithoutStagingFails) {
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  EXPECT_TRUE(txn->Commit().status().IsFailedPrecondition());
}

TEST_F(TransactionTest, MixedOperationsRejected) {
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Append({MakeFile("/f", "p", 1)}).ok());
  EXPECT_TRUE(
      txn->RewriteFiles({"/f"}, {}).IsFailedPrecondition());
}

TEST_F(TransactionTest, ConcurrentAppendsBothLand) {
  Table table = MakeTable();
  auto txn1 = table.NewTransaction();
  auto txn2 = table.NewTransaction();
  ASSERT_TRUE(txn1->Append({MakeFile("/f1", "p", 1)}).ok());
  ASSERT_TRUE(txn2->Append({MakeFile("/f2", "p", 1)}).ok());
  ASSERT_TRUE(txn1->Commit().ok());
  // txn2's base is stale; plain Commit validates the rebase (appends never
  // conflict) and lands.
  auto committed = txn2->Commit();
  ASSERT_TRUE(committed.ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), 2);
}

// -------------------------------------------------------------- Rewrites

TEST_F(TransactionTest, RewriteReplacesFiles) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20),
                           MakeFile("/big", "m=1995-02", 900)})
                  .ok());
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(
      txn->RewriteFiles({"/s1", "/s2"}, {MakeFile("/c1", "m=1995-01", 30)})
          .ok());
  auto committed = txn->Commit();
  ASSERT_TRUE(committed.ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), 2);
  EXPECT_TRUE((*meta)->IsLive("/c1"));
  EXPECT_TRUE((*meta)->IsLive("/big"));
  EXPECT_FALSE((*meta)->IsLive("/s1"));
  const Snapshot* snap = (*meta)->current_snapshot();
  EXPECT_EQ(snap->operation, SnapshotOperation::kReplace);
  EXPECT_EQ(snap->deleted_files, 2);
  ASSERT_NE(snap->removed_paths, nullptr);
  EXPECT_EQ(snap->removed_paths->size(), 2u);
}

TEST_F(TransactionTest, RewriteOfMissingFileConflicts) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "p", 10)}).ok());
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->RewriteFiles({"/ghost"}, {MakeFile("/c", "p", 5)}).ok());
  EXPECT_TRUE(txn->Commit().status().IsCommitConflict());
}

TEST_F(TransactionTest, RewriteSurvivesConcurrentAppend) {
  // Fast-appends only add files; a rewrite rebases over them cleanly in
  // BOTH validation modes (matching Iceberg's behaviour).
  for (ValidationMode mode : {ValidationMode::kStrictTableLevel,
                              ValidationMode::kPartitionAware}) {
    SetUp();  // fresh table per mode
    ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                             MakeFile("/s2", "m=1995-01", 20)})
                    .ok());
    Table table = MakeTable();
    auto rewrite = table.NewTransaction(mode);
    ASSERT_TRUE(rewrite
                    ->RewriteFiles({"/s1", "/s2"},
                                   {MakeFile("/c", "m=1995-01", 30)})
                    .ok());
    ASSERT_TRUE(AppendFiles({MakeFile("/new", "m=1995-01", 5)}).ok());
    auto committed = rewrite->CommitWithRetries(3);
    ASSERT_TRUE(committed.ok()) << committed.status();
    auto meta = store_.LoadTable("db.t");
    EXPECT_TRUE((*meta)->IsLive("/c"));
    EXPECT_TRUE((*meta)->IsLive("/new"));
    EXPECT_FALSE((*meta)->IsLive("/s1"));
  }
}

TEST_F(TransactionTest, StrictRewriteConflictsWithDisjointConcurrentRewrite) {
  // The paper's §4.4 observation: concurrent REWRITES of the same table
  // conflict under Iceberg v1.2.0 even for DISTINCT partitions.
  ASSERT_TRUE(AppendFiles({MakeFile("/a1", "m=1995-01", 10),
                           MakeFile("/a2", "m=1995-01", 20),
                           MakeFile("/b1", "m=1997-09", 10),
                           MakeFile("/b2", "m=1997-09", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite_a = table.NewTransaction(ValidationMode::kStrictTableLevel);
  ASSERT_TRUE(rewrite_a
                  ->RewriteFiles({"/a1", "/a2"},
                                 {MakeFile("/ca", "m=1995-01", 30)})
                  .ok());
  // A concurrent rewrite of the OTHER partition lands first.
  {
    auto rewrite_b = table.NewTransaction(ValidationMode::kStrictTableLevel);
    ASSERT_TRUE(rewrite_b
                    ->RewriteFiles({"/b1", "/b2"},
                                   {MakeFile("/cb", "m=1997-09", 30)})
                    .ok());
    ASSERT_TRUE(rewrite_b->Commit().ok());
  }
  EXPECT_TRUE(rewrite_a->CommitWithRetries(3).status().IsCommitConflict());
}

TEST_F(TransactionTest, PartitionAwareRewriteSurvivesDisjointRewrite) {
  // The §8 "conflict filtering" fix: disjoint-partition rewrites coexist.
  ASSERT_TRUE(AppendFiles({MakeFile("/a1", "m=1995-01", 10),
                           MakeFile("/a2", "m=1995-01", 20),
                           MakeFile("/b1", "m=1997-09", 10),
                           MakeFile("/b2", "m=1997-09", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite_a = table.NewTransaction(ValidationMode::kPartitionAware);
  ASSERT_TRUE(rewrite_a
                  ->RewriteFiles({"/a1", "/a2"},
                                 {MakeFile("/ca", "m=1995-01", 30)})
                  .ok());
  {
    auto rewrite_b = table.NewTransaction(ValidationMode::kPartitionAware);
    ASSERT_TRUE(rewrite_b
                    ->RewriteFiles({"/b1", "/b2"},
                                   {MakeFile("/cb", "m=1997-09", 30)})
                    .ok());
    ASSERT_TRUE(rewrite_b->Commit().ok());
  }
  auto committed = rewrite_a->CommitWithRetries(3);
  ASSERT_TRUE(committed.ok()) << committed.status();
  auto meta = store_.LoadTable("db.t");
  EXPECT_TRUE((*meta)->IsLive("/ca"));
  EXPECT_TRUE((*meta)->IsLive("/cb"));
}

TEST_F(TransactionTest, PartitionAwareRewriteConflictsOnSamePartitionRewrite) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20),
                           MakeFile("/s3", "m=1995-01", 25)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kPartitionAware);
  ASSERT_TRUE(rewrite
                  ->RewriteFiles({"/s1", "/s2"},
                                 {MakeFile("/c", "m=1995-01", 30)})
                  .ok());
  // A concurrent rewrite of a DIFFERENT file in the SAME partition.
  {
    auto other = table.NewTransaction(ValidationMode::kPartitionAware);
    ASSERT_TRUE(
        other->RewriteFiles({"/s3"}, {MakeFile("/c3", "m=1995-01", 25)}).ok());
    ASSERT_TRUE(other->Commit().ok());
  }
  EXPECT_TRUE(rewrite->CommitWithRetries(3).status().IsCommitConflict());
}

TEST_F(TransactionTest, RewriteConflictsWhenOverwriteRemovesInput) {
  // A concurrent user overwrite that replaces one of the rewrite's input
  // files aborts it in both modes — Table 1's cluster-side conflicts.
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kStrictTableLevel);
  ASSERT_TRUE(rewrite
                  ->RewriteFiles({"/s1", "/s2"},
                                 {MakeFile("/c", "m=1995-01", 30)})
                  .ok());
  {
    auto user = table.NewTransaction();
    ASSERT_TRUE(user->Overwrite({"/s1"}, {MakeFile("/u", "m=1995-01", 9)})
                    .ok());
    ASSERT_TRUE(user->Commit().ok());
  }
  EXPECT_TRUE(rewrite->CommitWithRetries(3).status().IsCommitConflict());
}

TEST_F(TransactionTest, PartitionAwareRewriteConflictsWhenInputRemoved) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kPartitionAware);
  ASSERT_TRUE(
      rewrite->RewriteFiles({"/s1"}, {MakeFile("/c", "m=1995-01", 9)}).ok());
  // A concurrent delete removes the rewrite's input.
  {
    auto del = table.NewTransaction();
    ASSERT_TRUE(del->DeleteFiles({"/s1"}).ok());
    ASSERT_TRUE(del->Commit().ok());
  }
  EXPECT_TRUE(rewrite->CommitWithRetries(3).status().IsCommitConflict());
}

// ---------------------------------------------------- Overwrites/deletes

TEST_F(TransactionTest, OverwriteReplacesAndAdds) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 10)}).ok());
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Overwrite({"/a"}, {MakeFile("/b", "p", 15)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_FALSE((*meta)->IsLive("/a"));
  EXPECT_TRUE((*meta)->IsLive("/b"));
  EXPECT_EQ((*meta)->current_snapshot()->operation,
            SnapshotOperation::kOverwrite);
}

TEST_F(TransactionTest, OverwriteConflictsWhenFileCompactedAway) {
  // This is the client-side conflict users see when compaction races
  // their write (Table 1).
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 10),
                           MakeFile("/a2", "p", 12)})
                  .ok());
  Table table = MakeTable();
  auto user_write = table.NewTransaction();
  ASSERT_TRUE(user_write->Overwrite({"/a"}, {MakeFile("/b", "p", 15)}).ok());
  // Compaction rewrites /a before the user commits.
  {
    auto compact = table.NewTransaction();
    ASSERT_TRUE(
        compact->RewriteFiles({"/a", "/a2"}, {MakeFile("/c", "p", 22)}).ok());
    ASSERT_TRUE(compact->Commit().ok());
  }
  EXPECT_TRUE(user_write->CommitWithRetries(3).status().IsCommitConflict());
}

TEST_F(TransactionTest, DeleteRemovesFiles) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 10),
                           MakeFile("/b", "p", 20)})
                  .ok());
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->DeleteFiles({"/a"}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->live_file_count(), 1);
  EXPECT_EQ((*meta)->current_snapshot()->operation,
            SnapshotOperation::kDelete);
}

// ---------------------------------------------- Structured conflicts

/// Delegating store whose next commits fail with CommitConflict even
/// though the version matched at load time — the raw pointer-swap (CAS)
/// race a single-threaded test cannot produce organically.
class RacyStore final : public MetadataStore {
 public:
  explicit RacyStore(FakeStore* inner) : inner_(inner) {}
  Result<TableMetadataPtr> LoadTable(const std::string& name) const override {
    return inner_->LoadTable(name);
  }
  Status CommitTable(const std::string& name, int64_t base_version,
                     TableMetadataPtr new_metadata) override {
    if (fail_commits_ > 0) {
      --fail_commits_;
      return Status::CommitConflict("metadata pointer moved");
    }
    return inner_->CommitTable(name, base_version, std::move(new_metadata));
  }
  void FailNextCommits(int n) { fail_commits_ = n; }

 private:
  FakeStore* inner_;
  int fail_commits_ = 0;
};

TEST_F(TransactionTest, CasRaceIsRecordedAsRetryableAndClearedOnSuccess) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  RacyStore racy(&store_);
  Table table(&racy, "db.t", &clock_);
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Append({MakeFile("/b", "p", 1)}).ok());
  racy.FailNextCommits(1);
  EXPECT_TRUE(txn->Commit().status().IsCommitConflict());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kCasRace);
  EXPECT_TRUE(txn->last_conflict().retryable());
  EXPECT_EQ(txn->last_conflict().table, "db.t");
  // The next attempt reloads, lands, and clears the conflict record.
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kNone);
}

TEST_F(TransactionTest, PersistentRacesReportRetriesExhausted) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  RacyStore racy(&store_);
  Table table(&racy, "db.t", &clock_);
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Append({MakeFile("/b", "p", 1)}).ok());
  racy.FailNextCommits(10);
  EXPECT_TRUE(txn->CommitWithRetries(2).status().IsCommitConflict());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kRetriesExhausted);
  // The budget is spent: reporting this retryable would loop callers.
  EXPECT_FALSE(txn->last_conflict().retryable());
}

TEST_F(TransactionTest, GhostRewriteReportsReplacedNotLive) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "p", 10)}).ok());
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->RewriteFiles({"/ghost"}, {MakeFile("/c", "p", 5)}).ok());
  EXPECT_TRUE(txn->Commit().status().IsCommitConflict());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kReplacedNotLive);
  EXPECT_FALSE(txn->last_conflict().retryable());
}

TEST_F(TransactionTest, RemovedInputReportsInputRemoved) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kPartitionAware);
  ASSERT_TRUE(
      rewrite->RewriteFiles({"/s1"}, {MakeFile("/c", "m=1995-01", 9)}).ok());
  {
    auto user = table.NewTransaction();
    ASSERT_TRUE(
        user->Overwrite({"/s1"}, {MakeFile("/u", "m=1995-01", 9)}).ok());
    ASSERT_TRUE(user->Commit().ok());
  }
  EXPECT_TRUE(rewrite->Commit().status().IsCommitConflict());
  EXPECT_EQ(rewrite->last_conflict().kind, ConflictKind::kInputRemoved);
  EXPECT_FALSE(rewrite->last_conflict().retryable());
  EXPECT_NE(rewrite->last_conflict().detail.find("/s1"), std::string::npos);
}

TEST_F(TransactionTest, StrictModeDisjointRewriteReportsStrictTableLevel) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a1", "m=1995-01", 10),
                           MakeFile("/b1", "m=1997-09", 10)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kStrictTableLevel);
  ASSERT_TRUE(
      rewrite->RewriteFiles({"/a1"}, {MakeFile("/ca", "m=1995-01", 10)}).ok());
  {
    auto other = table.NewTransaction(ValidationMode::kStrictTableLevel);
    ASSERT_TRUE(
        other->RewriteFiles({"/b1"}, {MakeFile("/cb", "m=1997-09", 10)}).ok());
    ASSERT_TRUE(other->Commit().ok());
  }
  EXPECT_TRUE(rewrite->Commit().status().IsCommitConflict());
  EXPECT_EQ(rewrite->last_conflict().kind, ConflictKind::kStrictTableLevel);
  EXPECT_FALSE(rewrite->last_conflict().retryable());
}

TEST_F(TransactionTest, OverlappingRewriteReportsPartitionOverlap) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "m=1995-01", 10),
                           MakeFile("/s2", "m=1995-01", 20)})
                  .ok());
  Table table = MakeTable();
  auto rewrite = table.NewTransaction(ValidationMode::kPartitionAware);
  ASSERT_TRUE(
      rewrite->RewriteFiles({"/s1"}, {MakeFile("/c", "m=1995-01", 10)}).ok());
  {
    auto other = table.NewTransaction(ValidationMode::kPartitionAware);
    ASSERT_TRUE(
        other->RewriteFiles({"/s2"}, {MakeFile("/c2", "m=1995-01", 20)}).ok());
    ASSERT_TRUE(other->Commit().ok());
  }
  EXPECT_TRUE(rewrite->Commit().status().IsCommitConflict());
  EXPECT_EQ(rewrite->last_conflict().kind, ConflictKind::kPartitionOverlap);
}

TEST_F(TransactionTest, CompactedAwayOverwriteReportsStaleOverwrite) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 10),
                           MakeFile("/a2", "p", 12)})
                  .ok());
  Table table = MakeTable();
  auto user = table.NewTransaction();
  ASSERT_TRUE(user->Overwrite({"/a"}, {MakeFile("/b", "p", 15)}).ok());
  {
    auto compact = table.NewTransaction();
    ASSERT_TRUE(
        compact->RewriteFiles({"/a", "/a2"}, {MakeFile("/c", "p", 22)}).ok());
    ASSERT_TRUE(compact->Commit().ok());
  }
  EXPECT_TRUE(user->Commit().status().IsCommitConflict());
  EXPECT_EQ(user->last_conflict().kind, ConflictKind::kStaleOverwrite);
  EXPECT_FALSE(user->last_conflict().retryable());
}

TEST_F(TransactionTest, InjectedCasRaceRecordsRetryableKind) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  fault::FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(fault::kSiteLstCommit, 1,
                       fault::FaultKind::kCasRaceConflict);
  fault::FaultInjector injector(options);
  store_.SetFaultInjector(&injector);
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Append({MakeFile("/b", "p", 1)}).ok());
  EXPECT_TRUE(txn->Commit().status().IsCommitConflict());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kInjectedCasRace);
  EXPECT_TRUE(txn->last_conflict().retryable());
  EXPECT_NE(txn->last_conflict().detail.find("injected"), std::string::npos);
  store_.SetFaultInjector(nullptr);
}

TEST_F(TransactionTest, InjectedCasRaceRecoversUnderCommitWithRetries) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  fault::FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(fault::kSiteLstCommit, 1,
                       fault::FaultKind::kCasRaceConflict);
  fault::FaultInjector injector(options);
  store_.SetFaultInjector(&injector);
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Append({MakeFile("/b", "p", 1)}).ok());
  auto committed = txn->CommitWithRetries(3);
  ASSERT_TRUE(committed.ok()) << committed.status();
  EXPECT_EQ(committed->retries, 1);
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kNone);
  auto meta = store_.LoadTable("db.t");
  EXPECT_TRUE((*meta)->IsLive("/b"));
  store_.SetFaultInjector(nullptr);
}

TEST_F(TransactionTest, InjectedValidationAbortIsTerminal) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  fault::FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(fault::kSiteLstCommit, 1,
                       fault::FaultKind::kValidationAbort);
  fault::FaultInjector injector(options);
  store_.SetFaultInjector(&injector);
  Table table = MakeTable();
  auto txn = table.NewTransaction();
  ASSERT_TRUE(txn->Append({MakeFile("/b", "p", 1)}).ok());
  EXPECT_TRUE(txn->CommitWithRetries(3).status().IsCommitConflict());
  EXPECT_EQ(txn->last_conflict().kind, ConflictKind::kInjectedValidation);
  EXPECT_FALSE(txn->last_conflict().retryable());
  // A terminal abort must not burn the retry budget: exactly one commit
  // attempt armed the site.
  EXPECT_EQ(injector.total_hits(), 1);
  store_.SetFaultInjector(nullptr);
}

TEST_F(TransactionTest, DisjointRewriteQuirkOnlyFiresForRewrites) {
  // kDisjointRewriteAbort models the Iceberg v1.2.0 strict-validation
  // quirk; it only applies to kReplace operations and degrades to no
  // fault for anything else.
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "p", 10)}).ok());
  fault::FaultInjectorOptions options;
  options.enabled = true;
  options.schedule.Add(fault::kSiteLstCommit, 1,
                       fault::FaultKind::kDisjointRewriteAbort);
  options.schedule.Add(fault::kSiteLstCommit, 2,
                       fault::FaultKind::kDisjointRewriteAbort);
  fault::FaultInjector injector(options);
  store_.SetFaultInjector(&injector);
  Table table = MakeTable();
  {
    // Hit 1 fires on an append: inert, the commit lands.
    auto append = table.NewTransaction();
    ASSERT_TRUE(append->Append({MakeFile("/s2", "p", 10)}).ok());
    ASSERT_TRUE(append->Commit().ok());
    EXPECT_EQ(append->last_conflict().kind, ConflictKind::kNone);
  }
  // Hit 2 fires on a rewrite: terminal validation abort.
  auto rewrite = table.NewTransaction();
  ASSERT_TRUE(
      rewrite->RewriteFiles({"/s1", "/s2"}, {MakeFile("/c", "p", 20)}).ok());
  EXPECT_TRUE(rewrite->Commit().status().IsCommitConflict());
  EXPECT_EQ(rewrite->last_conflict().kind, ConflictKind::kInjectedValidation);
  store_.SetFaultInjector(nullptr);
}

TEST(ConflictKindTest, NamesAreStable) {
  EXPECT_STREQ(ConflictKindName(ConflictKind::kNone), "none");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kCasRace), "cas_race");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kInputRemoved),
               "input_removed");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kStrictTableLevel),
               "strict_table_level");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kPartitionOverlap),
               "partition_overlap");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kStaleOverwrite),
               "stale_overwrite");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kReplacedNotLive),
               "replaced_not_live");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kInjectedCasRace),
               "injected_cas_race");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kInjectedValidation),
               "injected_validation");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kRetriesExhausted),
               "retries_exhausted");
}

// ------------------------------------------------------------- Metadata

TEST_F(TransactionTest, VersionAdvancesPerCommit) {
  auto v1 = store_.LoadTable("db.t");
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  auto v2 = store_.LoadTable("db.t");
  EXPECT_EQ((*v2)->version(), (*v1)->version() + 1);
}

TEST_F(TransactionTest, LiveFilesByPartition) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "m=1995-01", 1),
                           MakeFile("/b", "m=1995-02", 2),
                           MakeFile("/c", "m=1995-01", 3)})
                  .ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->LiveFiles(std::string("m=1995-01")).size(), 2u);
  EXPECT_EQ((*meta)->LiveFiles(std::string("m=1999-12")).size(), 0u);
  EXPECT_EQ((*meta)->LivePartitions().size(), 2u);
}

TEST_F(TransactionTest, SnapshotsAfterReturnsSuffix) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  auto mid = store_.LoadTable("db.t");
  const int64_t mid_snap = (*mid)->current_snapshot_id();
  ASSERT_TRUE(AppendFiles({MakeFile("/b", "p", 1)}).ok());
  ASSERT_TRUE(AppendFiles({MakeFile("/c", "p", 1)}).ok());
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->SnapshotsAfter(mid_snap).size(), 2u);
  EXPECT_EQ((*meta)->SnapshotsAfter(0).size(), 3u);
}

TEST_F(TransactionTest, ManifestMergeBoundsManifestCount) {
  // Lower the merge threshold via table property.
  {
    auto meta = store_.LoadTable("db.t");
    TableMetadata::Builder builder(**meta);
    builder.SetProperty(kPropMaxManifests, "5");
    auto next = builder.Build();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(store_.CommitTable("db.t", (*meta)->version(), *next).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        AppendFiles({MakeFile("/f" + std::to_string(i), "p", 1)}).ok());
  }
  auto meta = store_.LoadTable("db.t");
  EXPECT_LE((*meta)->current_snapshot()->manifests.size(), 5u);
  EXPECT_EQ((*meta)->live_file_count(), 20);
}

// ---------------------------------------------------------------- Expiry

TEST_F(TransactionTest, ExpireSnapshotsDropsOldAndFindsOrphans) {
  ASSERT_TRUE(AppendFiles({MakeFile("/s1", "p", 1),
                           MakeFile("/s2", "p", 2)})
                  .ok());
  clock_.AdvanceTo(kHour);
  // Compaction replaces s1+s2 with c1.
  {
    Table table = MakeTable();
    auto txn = table.NewTransaction();
    ASSERT_TRUE(txn->RewriteFiles({"/s1", "/s2"}, {MakeFile("/c1", "p", 3)})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  clock_.AdvanceTo(10 * kHour);
  auto expired = ExpireSnapshots(&store_, "db.t", &clock_,
                                 /*older_than=*/5 * kHour, /*keep_last=*/1);
  ASSERT_TRUE(expired.ok()) << expired.status();
  EXPECT_EQ(expired->expired_snapshots, 1);
  // s1/s2 are only referenced by the expired append snapshot.
  EXPECT_EQ(expired->orphaned_paths.size(), 2u);
  auto meta = store_.LoadTable("db.t");
  EXPECT_EQ((*meta)->snapshots().size(), 1u);
  EXPECT_TRUE((*meta)->IsLive("/c1"));
}

TEST_F(TransactionTest, ExpireKeepsCurrentSnapshot) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 1)}).ok());
  clock_.AdvanceTo(100 * kHour);
  auto expired = ExpireSnapshots(&store_, "db.t", &clock_,
                                 /*older_than=*/50 * kHour);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->expired_snapshots, 0);  // current is always retained
  auto meta = store_.LoadTable("db.t");
  EXPECT_TRUE((*meta)->IsLive("/a"));
}

TEST_F(TransactionTest, ExpireNoSnapshotsIsNoop) {
  auto expired = ExpireSnapshots(&store_, "db.t", &clock_, 0);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->expired_snapshots, 0);
}

TEST_F(TransactionTest, ExpireSharedFilesNotOrphaned) {
  ASSERT_TRUE(AppendFiles({MakeFile("/keep", "p", 1)}).ok());
  clock_.AdvanceTo(kHour);
  ASSERT_TRUE(AppendFiles({MakeFile("/fresh", "p", 2)}).ok());
  clock_.AdvanceTo(10 * kHour);
  auto expired = ExpireSnapshots(&store_, "db.t", &clock_, 5 * kHour);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->expired_snapshots, 1);
  // /keep is still live in the retained snapshot: not an orphan.
  EXPECT_TRUE(expired->orphaned_paths.empty());
}

// --------------------------------------------------------- Table / scans

TEST_F(TransactionTest, PlanScanWholeTableAndPartition) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "m=1995-01", 100),
                           MakeFile("/b", "m=1995-02", 200)})
                  .ok());
  Table table = MakeTable();
  auto full = table.PlanScan();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->files.size(), 2u);
  EXPECT_EQ(full->total_bytes, 300);
  auto pruned = table.PlanScan(std::string("m=1995-01"));
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->files.size(), 1u);
  EXPECT_EQ(pruned->total_bytes, 100);
}

TEST_F(TransactionTest, PlanScanEmptyTable) {
  Table table = MakeTable();
  auto plan = table.PlanScan();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->files.empty());
  EXPECT_EQ(plan->snapshot_id, 0);
}

// -------------------------------------------------------- MetadataTables

TEST_F(TransactionTest, PartitionsRowsAggregate) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "m=1995-01", 100),
                           MakeFile("/b", "m=1995-01", 300),
                           MakeFile("/c", "m=1995-02", 50)})
                  .ok());
  auto meta = store_.LoadTable("db.t");
  MetadataTables tables(*meta);
  auto rows = tables.Partitions();
  ASSERT_EQ(rows.size(), 2u);
  const PartitionRow& jan = rows[0].partition == "m=1995-01" ? rows[0]
                                                             : rows[1];
  EXPECT_EQ(jan.file_count, 2);
  EXPECT_EQ(jan.total_bytes, 400);
  EXPECT_EQ(jan.smallest_file_bytes, 100);
  EXPECT_EQ(jan.largest_file_bytes, 300);
  EXPECT_DOUBLE_EQ(jan.avg_file_bytes(), 200.0);
}

TEST_F(TransactionTest, SnapshotsAndManifestsRows) {
  ASSERT_TRUE(AppendFiles({MakeFile("/a", "p", 100)}).ok());
  ASSERT_TRUE(AppendFiles({MakeFile("/b", "p", 100)}).ok());
  auto meta = store_.LoadTable("db.t");
  MetadataTables tables(*meta);
  auto snaps = tables.Snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].operation, "append");
  EXPECT_EQ(snaps[1].parent_snapshot_id, snaps[0].snapshot_id);
  auto manifests = tables.Manifests();
  EXPECT_EQ(manifests.size(), 2u);
}

TEST_F(TransactionTest, FilesAddedAfterSupportsSnapshotScope) {
  ASSERT_TRUE(AppendFiles({MakeFile("/old", "p", 1)}).ok());
  auto mid = store_.LoadTable("db.t");
  const int64_t mid_snap = (*mid)->current_snapshot_id();
  ASSERT_TRUE(AppendFiles({MakeFile("/new", "p", 2)}).ok());
  MetadataTables tables(*store_.LoadTable("db.t"));
  auto fresh = tables.FilesAddedAfter(mid_snap);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].path, "/new");
}

// ----------------------------------------------------- Metadata builder

TEST(TableMetadataBuilderTest, ValidatesNameAndLocation) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true}});
  {
    TableMetadata::Builder b("", "/loc", schema,
                             PartitionSpec::Unpartitioned());
    EXPECT_TRUE(b.Build().status().IsInvalidArgument());
  }
  {
    TableMetadata::Builder b("t", "relative", schema,
                             PartitionSpec::Unpartitioned());
    EXPECT_TRUE(b.Build().status().IsInvalidArgument());
  }
}

TEST(TableMetadataBuilderTest, ValidatesSpecAgainstSchema) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true}});
  PartitionSpec bad(1, {{1, Transform::kMonth, "m"}});
  TableMetadata::Builder b("t", "/loc", schema, bad);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(TableMetadataBuilderTest, TargetFileSizeProperty) {
  Schema schema(0, {{1, "a", FieldType::kInt64, true}});
  TableMetadata::Builder b("t", "/loc", schema,
                           PartitionSpec::Unpartitioned());
  b.SetProperty(kPropTargetFileSizeBytes, std::to_string(128 * kMiB));
  auto meta = b.Build();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)->target_file_size_bytes(), 128 * kMiB);

  TableMetadata::Builder d("t", "/loc", schema,
                           PartitionSpec::Unpartitioned());
  EXPECT_EQ((*d.Build())->target_file_size_bytes(), 512 * kMiB);
}

}  // namespace
}  // namespace autocomp::lst
