// Unit tests for src/obs: the deterministic trace recorder (ticks, span
// ids, digests, ring semantics, level gating), the Chrome trace-event
// and Prometheus exporters, and the decision audit — recorded ranking
// spans must name exactly the candidate set and winners the pipeline's
// own report does.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics_export.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/tpch.h"

namespace autocomp::obs {
namespace {

/// All emission-observing tests skip under -DAUTOCOMP_DISABLE_TRACING
/// (enabled() is a constant false and nothing is recorded; the build
/// compiling at all is that configuration's test).
bool TracingCompiledOut() {
  TraceRecorder::Options options;
  options.level = TraceLevel::kFull;
  return !TraceRecorder(options).enabled(TraceLevel::kPhases);
}

TraceRecorder MakeRecorder(TraceLevel level,
                           size_t capacity = TraceRecorder::kDefaultCapacity,
                           const std::string& lane = "main") {
  TraceRecorder::Options options;
  options.level = level;
  options.lane = lane;
  options.capacity = capacity;
  return TraceRecorder(options);
}

// ------------------------------------------------------------- Levels

TEST(TraceLevelTest, NamesRoundTrip) {
  for (const TraceLevel level :
       {TraceLevel::kOff, TraceLevel::kPhases, TraceLevel::kDecisions,
        TraceLevel::kFull}) {
    const auto parsed = TraceLevelByName(TraceLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(TraceLevelByName("verbose").ok());
}

TEST(TraceLevelTest, GatingIsCumulative) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder decisions = MakeRecorder(TraceLevel::kDecisions);
  EXPECT_TRUE(decisions.enabled(TraceLevel::kPhases));
  EXPECT_TRUE(decisions.enabled(TraceLevel::kDecisions));
  EXPECT_FALSE(decisions.enabled(TraceLevel::kFull));
  // kOff is never "enabled", even on an off recorder.
  EXPECT_FALSE(decisions.enabled(TraceLevel::kOff));
  EXPECT_FALSE(MakeRecorder(TraceLevel::kOff).enabled(TraceLevel::kPhases));
}

TEST(TraceRecorderTest, OffRecorderRecordsNothing) {
  TraceRecorder off = MakeRecorder(TraceLevel::kOff);
  const uint64_t span = off.BeginSpan(TraceLevel::kPhases,
                                      SpanCategory::kPhase, "x", kHour);
  EXPECT_EQ(span, 0u);
  off.EndSpan(span, kHour);  // no-op by contract
  off.Instant(TraceLevel::kFull, SpanCategory::kFault, "y", kHour);
  EXPECT_EQ(off.digest().events, 0);
  EXPECT_TRUE(off.Events().empty());
}

TEST(TraceRecorderTest, UnderLevelEventsAreDropped) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder phases = MakeRecorder(TraceLevel::kPhases);
  phases.Instant(TraceLevel::kFull, SpanCategory::kStorage, "too.detailed",
                 kHour);
  EXPECT_EQ(phases.BeginSpan(TraceLevel::kDecisions, SpanCategory::kDecision,
                             "too.detailed", kHour),
            0u);
  EXPECT_EQ(phases.digest().events, 0);
  phases.Instant(TraceLevel::kPhases, SpanCategory::kPhase, "kept", kHour);
  EXPECT_EQ(phases.digest().events, 1);
}

// -------------------------------------------------------- Ticks / spans

TEST(TraceRecorderTest, TicksAreUniqueAndMonotonic) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder trace = MakeRecorder(TraceLevel::kFull);
  // Many events at the same simulated instant: sub-ticks must keep every
  // timestamp unique and strictly increasing.
  for (int i = 0; i < 10; ++i) {
    trace.Instant(TraceLevel::kPhases, SpanCategory::kPhase, "tick", kHour);
  }
  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].start_tick, events[i - 1].start_tick);
  }
  // Simulated time advancing jumps the tick to sim_seconds * 1e6.
  trace.Instant(TraceLevel::kPhases, SpanCategory::kPhase, "later", 2 * kHour);
  EXPECT_EQ(trace.Events().back().start_tick,
            static_cast<uint64_t>(2 * kHour) * 1'000'000u);
}

TEST(TraceRecorderTest, SpanEndExceedsEverythingEmittedInside) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder trace = MakeRecorder(TraceLevel::kFull);
  const uint64_t outer = trace.BeginSpan(TraceLevel::kPhases,
                                         SpanCategory::kPhase, "outer", kHour);
  ASSERT_NE(outer, 0u);
  trace.Instant(TraceLevel::kFull, SpanCategory::kRunner, "inside", kHour);
  trace.EndSpan(outer, kHour, 1.0, "outcome=done");
  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& span = events[0].name == std::string("outer")
                               ? events[0]
                               : events[1];
  const TraceEvent& inside = events[0].name == std::string("outer")
                                 ? events[1]
                                 : events[0];
  EXPECT_LE(span.start_tick, inside.start_tick);
  EXPECT_GT(span.end_tick, inside.end_tick);
  EXPECT_NE(span.detail.find("outcome=done"), std::string::npos);
  EXPECT_NE(span.span_id, 0u);
}

TEST(TraceRecorderTest, SpanIdsAreDeterministicPerLane) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  const auto run = [](const std::string& lane) {
    TraceRecorder trace = MakeRecorder(TraceLevel::kFull,
                                       TraceRecorder::kDefaultCapacity, lane);
    const uint64_t s = trace.BeginSpan(TraceLevel::kPhases,
                                       SpanCategory::kPhase, "s", kHour);
    trace.EndSpan(s, kHour);
    return trace.Events().front().span_id;
  };
  EXPECT_EQ(run("tenant000"), run("tenant000"));  // pure function of inputs
  EXPECT_NE(run("tenant000"), run("tenant001"));  // keyed by lane
}

// ------------------------------------------------------------- Digest

TEST(TraceDigestTest, OrderInsensitiveCombine) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  // Two recorders emit the same per-lane streams; digests merged in
  // opposite orders must agree (commutative combine).
  TraceRecorder a1 = MakeRecorder(TraceLevel::kFull, 64, "a");
  TraceRecorder b1 = MakeRecorder(TraceLevel::kFull, 64, "b");
  TraceRecorder a2 = MakeRecorder(TraceLevel::kFull, 64, "a");
  TraceRecorder b2 = MakeRecorder(TraceLevel::kFull, 64, "b");
  for (TraceRecorder* t : {&a1, &a2}) {
    t->Instant(TraceLevel::kFull, SpanCategory::kFault, "f", kHour, "k=1", 2);
  }
  for (TraceRecorder* t : {&b1, &b2}) {
    t->Instant(TraceLevel::kFull, SpanCategory::kCommit, "c", kDay, "k=2", 3);
  }
  const TraceDigest ab = TraceRecorder::MergeDigests({&a1, &b1});
  const TraceDigest ba = TraceRecorder::MergeDigests({&b2, &a2});
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.events, 2);
  EXPECT_EQ(ab.Fingerprint(), ba.Fingerprint());
  EXPECT_NE(ab, TraceDigest{});
}

TEST(TraceDigestTest, SensitiveToContent) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder a = MakeRecorder(TraceLevel::kFull, 64, "a");
  TraceRecorder b = MakeRecorder(TraceLevel::kFull, 64, "a");
  a.Instant(TraceLevel::kFull, SpanCategory::kFault, "f", kHour, "k=1");
  b.Instant(TraceLevel::kFull, SpanCategory::kFault, "f", kHour, "k=2");
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest().Fingerprint(), b.digest().Fingerprint());
}

TEST(TraceDigestTest, IndependentOfRingCapacity) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder big = MakeRecorder(TraceLevel::kFull, 1024);
  TraceRecorder tiny = MakeRecorder(TraceLevel::kFull, 4);
  for (int i = 0; i < 100; ++i) {
    for (TraceRecorder* t : {&big, &tiny}) {
      t->Instant(TraceLevel::kFull, SpanCategory::kStorage, "e", kHour,
                 "i=" + std::to_string(i));
    }
  }
  EXPECT_EQ(big.digest(), tiny.digest());
  EXPECT_EQ(big.events_dropped(), 0);
  EXPECT_EQ(tiny.events_dropped(), 96);
  EXPECT_EQ(tiny.Events().size(), 4u);
  // The ring keeps the newest events, in tick order.
  EXPECT_EQ(tiny.Events().back().detail, "i=99");
  const std::string line = big.digest().ToString();
  EXPECT_NE(line.find("fp="), std::string::npos);
  EXPECT_NE(line.find("events=100"), std::string::npos);
}

// ---------------------------------------------------- Chrome exporter

TEST(ChromeExportTest, ValidNestedJson) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder lane = MakeRecorder(TraceLevel::kFull, 128, "tenant000");
  const uint64_t run = lane.BeginSpan(TraceLevel::kPhases,
                                      SpanCategory::kPhase, "ooda.run", kHour);
  const uint64_t unit = lane.BeginSpan(TraceLevel::kFull,
                                       SpanCategory::kRunner, "runner.unit",
                                       kHour, "table=db.t");
  lane.Instant(TraceLevel::kFull, SpanCategory::kCommit, "commit.success",
               kHour, "table=db.t;op=replace;snapshot=3", 2);
  lane.EndSpan(unit, kHour, 0.5, "outcome=committed;snapshot=3");
  lane.EndSpan(run, kHour, 1, "ranked=1;selected=1;committed=1");

  const auto parsed = JsonValue::Parse(ChromeTraceJson({&lane}).Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& doc = *parsed;
  EXPECT_EQ(doc.Get("displayTimeUnit").as_string(), "ms");
  const JsonValue& events = doc.Get("traceEvents");
  ASSERT_EQ(events.type(), JsonValue::Type::kArray);

  std::map<std::string, const JsonValue*> by_name;
  int metadata = 0, complete = 0, instants = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events[i];
    const std::string ph = e.Get("ph").as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    by_name[e.Get("name").as_string()] = &e;
    if (ph == "X") ++complete;
    if (ph == "i") ++instants;
    // Same process, and the lane's track.
    EXPECT_EQ(e.Get("pid").as_int(), 1);
    EXPECT_EQ(e.Get("tid").as_int(), 1);
  }
  EXPECT_GE(metadata, 2);  // process_name + one thread_name per lane
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instants, 1);

  // Genuine containment: ooda.run ⊇ runner.unit ⊇ commit instant.
  const JsonValue& outer = *by_name.at("ooda.run");
  const JsonValue& inner = *by_name.at("runner.unit");
  const JsonValue& commit = *by_name.at("commit.success");
  const int64_t outer_end = outer.Get("ts").as_int() +
                            outer.Get("dur").as_int();
  const int64_t inner_end = inner.Get("ts").as_int() +
                            inner.Get("dur").as_int();
  EXPECT_LE(outer.Get("ts").as_int(), inner.Get("ts").as_int());
  EXPECT_GT(inner_end, commit.Get("ts").as_int());
  EXPECT_GT(outer_end, inner_end);
  EXPECT_EQ(commit.Get("s").as_string(), "t");
  EXPECT_EQ(inner.Get("cat").as_string(), "runner");
}

TEST(ChromeExportTest, OneThreadTrackPerLane) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder a = MakeRecorder(TraceLevel::kFull, 16, "tenant000");
  TraceRecorder b = MakeRecorder(TraceLevel::kFull, 16, "tenant001");
  a.Instant(TraceLevel::kPhases, SpanCategory::kPhase, "e", kHour);
  b.Instant(TraceLevel::kPhases, SpanCategory::kPhase, "e", kHour);
  const JsonValue doc = ChromeTraceJson({&a, &b, nullptr});
  int named_threads = 0;
  std::vector<int64_t> event_tids;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events[i];
    if (e.Get("ph").as_string() == "M" &&
        e.Get("name").as_string() == "thread_name") {
      ++named_threads;
    } else if (e.Get("ph").as_string() != "M") {
      event_tids.push_back(e.Get("tid").as_int());
    }
  }
  EXPECT_EQ(named_threads, 2);
  EXPECT_EQ(event_tids, (std::vector<int64_t>{1, 2}));
}

// ------------------------------------------------- Prometheus exporter

TEST(PrometheusExportTest, SanitizesNames) {
  EXPECT_EQ(SanitizeMetricName("read_latency_s"), "read_latency_s");
  EXPECT_EQ(SanitizeMetricName("files.total-live"), "files_total_live");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
}

TEST(PrometheusExportTest, TextFormat) {
  MetricsSnapshot snap;
  snap.counters["commit.conflicts"] = 4;
  snap.gauges["files_total"] = 123.0;
  MetricsSnapshot::Summary lat;
  lat.count = 2;
  lat.sum = 3.0;
  lat.min = 1.0;
  lat.max = 2.0;
  snap.summaries["read_latency_s"] = lat;
  const std::string text = ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE autocomp_commit_conflicts_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("autocomp_commit_conflicts_total 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE autocomp_files_total gauge"),
            std::string::npos);
  EXPECT_NE(text.find("autocomp_read_latency_s_count 2"), std::string::npos);
  EXPECT_NE(text.find("autocomp_read_latency_s_sum 3"), std::string::npos);
  EXPECT_NE(text.find("autocomp_read_latency_s_min 1"), std::string::npos);
  EXPECT_NE(text.find("autocomp_read_latency_s_max 2"), std::string::npos);
}

TEST(PrometheusExportTest, RecorderSnapshotAggregates) {
  sim::MetricsRecorder metrics;
  metrics.Increment("conflicts", kMinute, 2);
  metrics.Increment("conflicts", 3 * kHour, 1);
  metrics.Record("files_total", kHour, 100);
  metrics.Record("files_total", kDay, 90);
  metrics.Observe("lat", kMinute, 1.5);
  metrics.Observe("lat", 2 * kHour, 0.5);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("conflicts"), 3);
  EXPECT_EQ(snap.gauges.at("files_total"), 90.0);  // last value
  EXPECT_EQ(snap.summaries.at("lat").count, 2);
  EXPECT_DOUBLE_EQ(snap.summaries.at("lat").sum, 2.0);
  EXPECT_DOUBLE_EQ(snap.summaries.at("lat").min, 0.5);
  EXPECT_DOUBLE_EQ(snap.summaries.at("lat").max, 1.5);
}

// ------------------------------------------------------ Decision audit

/// Splits a "key=value;key=value" detail payload.
std::map<std::string, std::string> ParseDetail(const std::string& detail) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < detail.size()) {
    size_t semi = detail.find(';', pos);
    if (semi == std::string::npos) semi = detail.size();
    const std::string pair = detail.substr(pos, semi - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = semi + 1;
  }
  return out;
}

std::string FmtTrait(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// The audit (ISSUE satellite): the decide-phase instants recorded by
/// the pipeline must name exactly the candidate set, order, scores, and
/// winners that its own PipelineRunReport carries — the trace is a
/// faithful audit log of the decision, not a parallel reimplementation.
TEST(DecisionAuditTest, RankingSpansMatchPipelineReport) {
  if (TracingCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder trace = MakeRecorder(TraceLevel::kDecisions);

  sim::SimEnvironment env;
  ASSERT_TRUE(workload::SetupTpchDatabase(
                  &env.catalog(), &env.query_engine(), "db", kGiB,
                  engine::UntunedUserJobProfile(), 0)
                  .ok());
  sim::StrategyPreset preset;
  preset.scope = sim::ScopeStrategy::kTable;
  preset.k = 3;
  preset.trigger_interval = kHour;
  preset.first_trigger = kHour;
  preset.trace = &trace;
  auto service = sim::MakeMoopService(&env, preset);

  sim::MetricsRecorder metrics;
  sim::EventDriver driver(&env, &metrics);
  driver.AttachService(service.get());
  ASSERT_TRUE(driver.Run({}, 3 * kHour).ok());
  ASSERT_GE(service->history().size(), 2u);

  std::vector<TraceEvent> ranked_events;
  std::vector<TraceEvent> winner_events;
  for (const TraceEvent& e : trace.Events()) {
    if (e.name == std::string("decide.ranked")) ranked_events.push_back(e);
    if (e.name == std::string("decide.winner")) winner_events.push_back(e);
  }

  // Events are in emission (tick) order; reports in run order; within a
  // run the pipeline emits ranked instants in rank order, then winners
  // in selection order — so both streams concatenate run by run.
  size_t ri = 0, wi = 0;
  for (const core::PipelineRunReport& report : service->history()) {
    for (size_t rank = 0; rank < report.ranked.size(); ++rank, ++ri) {
      ASSERT_LT(ri, ranked_events.size());
      const auto kv = ParseDetail(ranked_events[ri].detail);
      EXPECT_EQ(kv.at("id"), report.ranked[rank].candidate().id());
      EXPECT_EQ(kv.at("rank"), std::to_string(rank));
      EXPECT_EQ(ranked_events[ri].value, report.ranked[rank].score);
      EXPECT_EQ(ranked_events[ri].category, SpanCategory::kDecision);
    }
    for (const core::ScoredCandidate& sc : report.selected) {
      ASSERT_LT(wi, winner_events.size());
      const auto kv = ParseDetail(winner_events[wi].detail);
      EXPECT_EQ(kv.at("id"), sc.candidate().id());
      EXPECT_EQ(winner_events[wi].value, sc.score);
      // The full trait vector that scored the winner rides along.
      for (const auto& [trait, value] : sc.traited.traits) {
        ASSERT_TRUE(kv.count(trait)) << "winner missing trait " << trait;
        EXPECT_EQ(kv.at(trait), FmtTrait(value));
      }
      ++wi;
    }
  }
  EXPECT_EQ(ri, ranked_events.size()) << "trace recorded extra rankings";
  EXPECT_EQ(wi, winner_events.size()) << "trace recorded extra winners";
  // The runs ranked something and selected something, or the audit is
  // vacuous.
  EXPECT_GT(ranked_events.size(), 0u);
  EXPECT_GT(winner_events.size(), 0u);
}

}  // namespace
}  // namespace autocomp::obs
