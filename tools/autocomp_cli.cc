/// \file autocomp_cli.cc
/// \brief Command-line scenario runner for the AutoComp simulator.
///
/// Runs the paper's evaluation scenarios with user-chosen knobs and
/// prints the headline metrics, e.g.:
///
///   autocomp_cli cab --strategy=hybrid --k=500 --hours=5
///   autocomp_cli cab --strategy=none --databases=8
///   autocomp_cli fleet --days=14 --strategy=table --budget=600
///   autocomp_cli fleet --days=7 --k=10 --seed=3
///   autocomp_cli fleetsim --days=7 --sim-shards=8 --pool-size=4
///
/// Scenarios:
///   cab      — the §6 CAB experiment (TPC-H-like databases + query
///              streams + hourly compaction trigger)
///   fleet    — the §7 production-fleet experiment (daily trigger)
///   fleetsim — shard-parallel data-plane replay of the fleet workload
///              (sim::FleetSimulation; bit-identical at any shard count)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics_export.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "core/advisor.h"
#include "core/policy.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/fleet_driver.h"
#include "sim/metrics.h"
#include "sim/presets.h"
#include "workload/cab.h"
#include "workload/fleet.h"
#include "workload/tpch.h"

using namespace autocomp;

namespace {

struct Flags {
  std::string scenario;
  std::string strategy = "hybrid";  // none|table|hybrid|partition|snapshot
  int64_t k = 50;
  double budget = 0;  // GBHr; > 0 switches to dynamic-k selection
  int hours = 5;
  int days = 7;
  int databases = 20;
  uint64_t seed = 99;
  bool deferred = true;
  /// Observe/orient fan-out: 0 = hardware concurrency, 1 = sequential.
  int pool_size = 0;
  bool stats_cache = true;
  int64_t stats_cache_capacity = core::CachingStatsCollector::kDefaultCapacity;
  bool stats_index = true;
  bool cross_check_stats_index = false;
  /// fleetsim: shard count for the parallel replay driver.
  int sim_shards = 4;
  /// fleetsim: advance shards concurrently (off = sequential reference).
  bool sharded_sim = true;
  /// fleetsim: lane lifecycle — "active" (lazy hydration + wake queue,
  /// the default) or "eager" (hydrate/advance every lane every epoch).
  /// Results are bit-identical; only wall-clock and footprint differ.
  std::string lane_mode = "active";
  /// fleetsim: resident-lane budget — after each epoch, coldest lanes
  /// beyond this count dehydrate into checkpoints (0 = unbounded).
  int64_t max_resident_lanes = 0;
  /// fleetsim: idle rule — evict lanes with no real work for this many
  /// simulated hours, regardless of the budget (0 = off).
  int evict_after_idle_hours = 0;
  /// Composable policy spec (core/policy.h), e.g.
  /// "trigger=file-count:16;granularity=table;movement=merge;
  /// picker=online-merge". Empty = the legacy preset path (equivalent to
  /// the Default() spec).
  std::string policy;
  /// Fault injection profile ("none" leaves the injector disabled).
  std::string fault_profile = "none";
  /// Seed for the injector's counter-RNG draws.
  uint64_t fault_seed = 0x5eedfa;
  /// Bounded retry attempts for compaction commits / runner crashes.
  int fault_retries = 4;
  /// Run the fault harness's invariant audit after the run (and, for
  /// fleetsim, after every hour epoch).
  bool check_invariants = false;
  /// Trace detail recorded during the run (off|phases|decisions|full).
  std::string trace_level = "off";
  /// Chrome trace-event JSON output path ("" = no export).
  std::string trace_out;
  /// Prometheus text metrics output path ("" = no export).
  std::string metrics_out;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: autocomp_cli <cab|fleet|fleetsim> [--strategy=none|table|"
      "hybrid|partition|snapshot]\n"
      "                    [--policy=SPEC]\n"
      "                    [--k=N] [--budget=GBHR] [--hours=N] [--days=N]\n"
      "                    [--databases=N] [--seed=N] [--no-deferred]\n"
      "                    [--pool-size=N] [--no-stats-cache]\n"
      "                    [--stats-cache-capacity=N] [--no-stats-index]\n"
      "                    [--cross-check-stats-index]\n"
      "                    [--sim-shards=K] [--no-sharded-sim]\n"
      "                    [--lane-mode=active|eager]\n"
      "                    [--max-resident-lanes=N]\n"
      "                    [--evict-after-idle-hours=N]\n"
      "                    [--fault-profile=none|timeouts|conflicts|chaos]\n"
      "                    [--fault-seed=N] [--fault-retries=N]\n"
      "                    [--check-invariants]\n"
      "                    [--trace-level=off|phases|decisions|full]\n"
      "                    [--trace-out=PATH] [--metrics-out=PATH]\n"
      "\n"
      "  --policy=SPEC            composable compaction policy (see\n"
      "                           DESIGN.md §11): four ';'-separated axes,\n"
      "                           e.g. \"trigger=file-count:16;granularity=\"\n"
      "                           \"table;movement=merge;picker=online-merge\"\n"
      "                           Axes: trigger=periodic|file-count[:N]|\n"
      "                           size-ratio[:R]|staleness[:H]|deadline[:H],\n"
      "                           granularity=partition|table|fleet,\n"
      "                           movement=full|partial|merge,\n"
      "                           picker=moop|sorted|greedy-size-ratio|\n"
      "                           online-merge[:K]. Omitted = the legacy\n"
      "                           default pipeline (bit-identical to\n"
      "                           \"trigger=periodic;granularity=table;\"\n"
      "                           \"movement=partial;picker=moop\")\n"
      "  --sim-shards=K           fleetsim: partition the fleet's tenant\n"
      "                           databases into K deterministic shards\n"
      "                           advanced concurrently; results are\n"
      "                           bit-identical at any K\n"
      "  --no-sharded-sim         fleetsim: advance shards one after\n"
      "                           another (the sequential reference)\n"
      "  --lane-mode=MODE         fleetsim: \"active\" hydrates lanes on\n"
      "                           first due work and wakes only due lanes\n"
      "                           each epoch; \"eager\" is the historical\n"
      "                           advance-everything reference. Results\n"
      "                           are bit-identical either way\n"
      "  --max-resident-lanes=N   fleetsim: hard resident-lane budget —\n"
      "                           after each epoch the coldest lanes over\n"
      "                           the budget dehydrate into in-memory\n"
      "                           checkpoints and restore on their next\n"
      "                           due event (0 = unbounded). Results are\n"
      "                           bit-identical at any budget\n"
      "  --evict-after-idle-hours=N  fleetsim: also dehydrate any lane\n"
      "                           idle for N simulated hours (0 = off)\n"
      "  --pool-size=N            pipeline worker threads (0 = all cores,\n"
      "                           1 = sequential); results are identical\n"
      "                           at any setting, only wall-clock changes\n"
      "  --no-stats-cache         disable the snapshot-keyed stats cache\n"
      "  --stats-cache-capacity=N LRU entry bound for the stats cache\n"
      "  --no-stats-index         disable the incremental stats index\n"
      "                           (ablation: observe rescans manifests;\n"
      "                           output is identical, only slower)\n"
      "  --cross-check-stats-index  debug: rescan on every index hit and\n"
      "                           abort the run on any divergence\n"
      "  --fault-profile=NAME     arm the fault injector with a preset\n"
      "                           (storage timeouts, commit conflicts,\n"
      "                           runner crashes...); deterministic for a\n"
      "                           fixed --fault-seed at any shard/pool size\n"
      "  --fault-seed=N           seed for the injector's counter-RNG\n"
      "  --fault-retries=N        bounded retry attempts (with exponential\n"
      "                           backoff) for commit conflicts and runner\n"
      "                           crashes (default 4)\n"
      "  --check-invariants       audit live-file/quota/lineage invariants\n"
      "                           after the run (fleetsim: every epoch)\n"
      "  --trace-level=LEVEL      deterministic tracing detail: phases\n"
      "                           records OODA phase spans, decisions adds\n"
      "                           ranking/winner events, full adds runner\n"
      "                           retries, commit outcomes, fault hits and\n"
      "                           storage timeout draws; the printed digest\n"
      "                           is bit-identical at any shard/pool size\n"
      "  --trace-out=PATH         write the trace as Chrome trace-event\n"
      "                           JSON (open in chrome://tracing)\n"
      "  --metrics-out=PATH       write run metrics in the Prometheus text\n"
      "                           exposition format\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  if (argc < 2) return false;
  flags->scenario = argv[1];
  if (flags->scenario != "cab" && flags->scenario != "fleet" &&
      flags->scenario != "fleetsim") {
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--strategy")) {
      flags->strategy = v;
    } else if (const char* v = value_of("--policy")) {
      flags->policy = v;
    } else if (const char* v = value_of("--k")) {
      flags->k = std::atoll(v);
    } else if (const char* v = value_of("--budget")) {
      flags->budget = std::atof(v);
    } else if (const char* v = value_of("--hours")) {
      flags->hours = std::atoi(v);
    } else if (const char* v = value_of("--days")) {
      flags->days = std::atoi(v);
    } else if (const char* v = value_of("--databases")) {
      flags->databases = std::atoi(v);
    } else if (const char* v = value_of("--seed")) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--pool-size")) {
      flags->pool_size = std::atoi(v);
    } else if (const char* v = value_of("--stats-cache-capacity")) {
      flags->stats_cache_capacity = std::atoll(v);
    } else if (const char* v = value_of("--sim-shards")) {
      flags->sim_shards = std::atoi(v);
    } else if (const char* v = value_of("--lane-mode")) {
      flags->lane_mode = v;
    } else if (const char* v = value_of("--max-resident-lanes")) {
      flags->max_resident_lanes = std::atoll(v);
    } else if (const char* v = value_of("--evict-after-idle-hours")) {
      flags->evict_after_idle_hours = std::atoi(v);
    } else if (const char* v = value_of("--fault-profile")) {
      flags->fault_profile = v;
    } else if (const char* v = value_of("--fault-seed")) {
      flags->fault_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--fault-retries")) {
      flags->fault_retries = std::atoi(v);
    } else if (const char* v = value_of("--trace-level")) {
      flags->trace_level = v;
    } else if (const char* v = value_of("--trace-out")) {
      flags->trace_out = v;
    } else if (const char* v = value_of("--metrics-out")) {
      flags->metrics_out = v;
    } else if (arg == "--check-invariants") {
      flags->check_invariants = true;
    } else if (arg == "--no-sharded-sim") {
      flags->sharded_sim = false;
    } else if (arg == "--no-deferred") {
      flags->deferred = false;
    } else if (arg == "--no-stats-cache") {
      flags->stats_cache = false;
    } else if (arg == "--no-stats-index") {
      flags->stats_index = false;
    } else if (arg == "--cross-check-stats-index") {
      flags->cross_check_stats_index = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Parses --policy ("" = stay on the legacy preset path). A malformed
/// spec is a usage error; the message carries the structured parse
/// reason (which axis, which token) so the fix is obvious.
Result<std::optional<core::PolicySpec>> PolicyFor(const Flags& flags) {
  if (flags.policy.empty()) return std::optional<core::PolicySpec>();
  core::PolicySpec::ParseError error;
  auto spec = core::PolicySpec::Parse(flags.policy, &error);
  if (!spec.ok()) {
    std::string detail = "--policy: " + error.reason;
    if (!error.axis.empty()) detail += " on axis '" + error.axis + "'";
    if (!error.token.empty()) detail += " at token '" + error.token + "'";
    return Status::InvalidArgument(detail + " in \"" + flags.policy + "\"");
  }
  return std::optional<core::PolicySpec>(*spec);
}

Result<sim::ScopeStrategy> ScopeFor(const std::string& strategy) {
  static const std::map<std::string, sim::ScopeStrategy> kByName = {
      {"table", sim::ScopeStrategy::kTable},
      {"hybrid", sim::ScopeStrategy::kHybrid},
      {"partition", sim::ScopeStrategy::kPartition},
      {"snapshot", sim::ScopeStrategy::kSnapshot},
  };
  const auto it = kByName.find(strategy);
  if (it == kByName.end()) {
    return Status::InvalidArgument("unknown strategy: " + strategy);
  }
  return it->second;
}

/// Environment template honoring the fault knobs. An unknown profile
/// name is a usage error (the Status lists the valid presets).
Result<sim::EnvironmentOptions> EnvOptionsFor(const Flags& flags) {
  sim::EnvironmentOptions env;
  env.retry.max_attempts = flags.fault_retries;
  if (flags.fault_profile != "none") {
    AUTOCOMP_ASSIGN_OR_RETURN(env.fault.profile,
                              fault::FaultProfileByName(flags.fault_profile));
    env.fault.enabled = true;
    env.fault.seed = flags.fault_seed;
  }
  return env;
}

/// Exports the trace / metrics artifacts the flags asked for and prints
/// the one-line trace digest (the golden fingerprint of the run).
int ExportObservability(const Flags& flags, const obs::TraceRecorder* trace,
                        const sim::MetricsRecorder& metrics) {
  if (trace != nullptr) {
    std::printf("trace digest: %s (%lld dropped from ring)\n",
                trace->digest().ToString().c_str(),
                static_cast<long long>(trace->events_dropped()));
    if (!flags.trace_out.empty()) {
      Status s = obs::WriteChromeTrace({trace}, flags.trace_out);
      if (!s.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::printf("trace written to %s\n", flags.trace_out.c_str());
    }
  }
  if (!flags.metrics_out.empty()) {
    Status s = obs::WritePrometheusText(metrics.Snapshot(), flags.metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", flags.metrics_out.c_str());
  }
  return 0;
}

/// Post-run invariant audit for the single-environment scenarios.
int AuditInvariants(sim::SimEnvironment& env) {
  const fault::InvariantChecker checker;
  if (Status s = checker.CheckOrFail(env.catalog()); !s.ok()) {
    std::fprintf(stderr, "invariant audit FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("invariant audit: OK\n");
  return 0;
}

std::unique_ptr<core::AutoCompService> MakeService(sim::SimEnvironment* env,
                                                   const Flags& flags,
                                                   SimTime interval,
                                                   ThreadPool* pool,
                                                   obs::TraceRecorder* trace) {
  if (flags.strategy == "none") return nullptr;
  auto scope = ScopeFor(flags.strategy);
  AUTOCOMP_CHECK(scope.ok()) << scope.status();
  auto policy = PolicyFor(flags);  // validated in main(); cannot fail here
  AUTOCOMP_CHECK(policy.ok()) << policy.status();
  sim::StrategyPreset preset;
  preset.scope = *scope;
  preset.policy = *policy;
  preset.k = flags.k;
  if (flags.budget > 0) preset.budget_gb_hours = flags.budget;
  preset.trigger_interval = interval;
  preset.first_trigger = interval;
  preset.deferred_act = flags.deferred;
  preset.pool = pool;
  preset.cache_stats = flags.stats_cache;
  preset.stats_cache_capacity = flags.stats_cache_capacity;
  preset.use_stats_index = flags.stats_index;
  preset.cross_check_stats_index = flags.cross_check_stats_index;
  preset.trace = trace;
  return sim::MakeMoopService(env, preset);
}

void PrintSummary(sim::SimEnvironment& env,
                  const sim::MetricsRecorder& metrics,
                  const core::AutoCompService* service, int64_t initial_files,
                  double total_read_seconds) {
  sim::TablePrinter table({"metric", "value"});
  table.AddRow({"initial files", std::to_string(initial_files)});
  table.AddRow({"final files", std::to_string(env.TotalFileCount())});
  table.AddRow({"open() calls",
                std::to_string(env.dfs().AggregateStats().open_calls)});
  table.AddRow({"open() timeouts",
                std::to_string(env.dfs().AggregateStats().timeouts)});
  table.AddRow({"total read time (h)",
                sim::Fmt(total_read_seconds / 3600.0, 2)});
  table.AddRow(
      {"client conflicts",
       std::to_string(metrics.TotalCount("client_conflicts"))});
  table.AddRow(
      {"cluster conflicts",
       std::to_string(metrics.TotalCount("cluster_conflicts") +
                      env.compaction_runner().total_conflicts())});
  table.AddRow({"compaction commits",
                std::to_string(env.compaction_runner().total_committed())});
  if (service != nullptr) {
    int64_t selected = 0;
    core::PipelinePhaseTimings wall;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t index_hits = 0;
    int64_t index_fallbacks = 0;
    for (const core::PipelineRunReport& r : service->history()) {
      selected += static_cast<int64_t>(r.selected.size());
      wall.generate_ms += r.timings.generate_ms;
      wall.observe_ms += r.timings.observe_ms;
      wall.orient_ms += r.timings.orient_ms;
      wall.decide_ms += r.timings.decide_ms;
      wall.act_ms += r.timings.act_ms;
      cache_hits += r.stats_cache_hits;
      cache_misses += r.stats_cache_misses;
      index_hits += r.stats_index_hits;
      index_fallbacks += r.stats_index_fallbacks;
    }
    table.AddRow({"pipeline runs",
                  std::to_string(service->history().size())});
    table.AddRow({"candidates selected", std::to_string(selected)});
    table.AddRow({"pipeline wall-clock (ms)", sim::Fmt(wall.total_ms(), 1)});
    table.AddRow({"  generate (ms)", sim::Fmt(wall.generate_ms, 1)});
    table.AddRow({"  observe (ms)", sim::Fmt(wall.observe_ms, 1)});
    table.AddRow({"  orient (ms)", sim::Fmt(wall.orient_ms, 1)});
    table.AddRow({"  decide (ms)", sim::Fmt(wall.decide_ms, 1)});
    table.AddRow({"  act (ms)", sim::Fmt(wall.act_ms, 1)});
    if (cache_hits + cache_misses > 0) {
      table.AddRow({"stats cache hits", std::to_string(cache_hits)});
      table.AddRow({"stats cache misses", std::to_string(cache_misses)});
      table.AddRow(
          {"stats cache hit rate",
           sim::Fmt(100.0 * static_cast<double>(cache_hits) /
                        static_cast<double>(cache_hits + cache_misses),
                    1) +
               "%"});
    }
    if (index_hits + index_fallbacks > 0) {
      table.AddRow({"stats index hits", std::to_string(index_hits)});
      table.AddRow(
          {"stats index fallbacks", std::to_string(index_fallbacks)});
    }
  }
  double gbhr = 0;
  for (const sim::SeriesPoint& p : metrics.Series("compaction_gbhr")) {
    gbhr += p.value;
  }
  table.AddRow({"compaction GBHr", sim::Fmt(gbhr, 1)});
  const fault::FaultInjector& injector = env.fault_injector();
  if (injector.enabled()) {
    table.AddRow({"faults injected",
                  std::to_string(injector.total_injected())});
    table.AddRow({"commit/runner retries",
                  std::to_string(env.compaction_runner().total_retries())});
    table.AddRow({"abandoned compactions",
                  std::to_string(env.compaction_runner().total_abandoned())});
    for (const auto& [site, counters] : injector.Counters()) {
      if (counters.injected == 0) continue;
      table.AddRow({"  fault " + site, std::to_string(counters.injected) +
                                           " / " +
                                           std::to_string(counters.hits) +
                                           " hits"});
    }
  }
  std::printf("%s", table.ToString().c_str());
}

int RunCab(const Flags& flags) {
  auto env_options = EnvOptionsFor(flags);
  if (!env_options.ok()) {
    std::fprintf(stderr, "%s\n", env_options.status().ToString().c_str());
    return 2;
  }
  auto trace_level = obs::TraceLevelByName(flags.trace_level);
  if (!trace_level.ok()) {
    std::fprintf(stderr, "%s\n", trace_level.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<obs::TraceRecorder> trace;
  if (*trace_level != obs::TraceLevel::kOff) {
    obs::TraceRecorder::Options trace_options;
    trace_options.level = *trace_level;
    trace = std::make_unique<obs::TraceRecorder>(trace_options);
    env_options->trace = trace.get();
  }
  sim::SimEnvironment env(*env_options);
  workload::CabOptions options;
  options.num_databases = flags.databases;
  options.duration = static_cast<SimTime>(flags.hours) * kHour;
  options.seed = flags.seed;
  workload::CabWorkload cab(options);
  std::printf("loading %d TPC-H-like databases...\n", flags.databases);
  // Scripted data loads treat failures as fatal; injections only arm for
  // the measured run.
  env.fault_injector().set_armed(false);
  for (const std::string& db : cab.DatabaseNames()) {
    Status setup = workload::SetupTpchDatabase(
        &env.catalog(), &env.query_engine(), db, 25 * kGiB,
        engine::UntunedUserJobProfile(), 0);
    if (!setup.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", setup.ToString().c_str());
      return 1;
    }
  }
  env.fault_injector().set_armed(true);
  const int64_t initial = env.TotalFileCount();

  ThreadPool pool(flags.pool_size);
  auto service = MakeService(&env, flags, kHour, &pool, trace.get());
  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.deferred_compaction = flags.deferred;
  sim::EventDriver driver(&env, &metrics, driver_options);
  if (service != nullptr) driver.AttachService(service.get());

  std::printf("running %dh of CAB streams (strategy=%s, k=%lld%s)...\n",
              flags.hours, flags.strategy.c_str(),
              static_cast<long long>(flags.k),
              flags.budget > 0 ? ", budgeted" : "");
  Status run = driver.Run(cab.GenerateEvents(), options.duration);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.ToString().c_str());
    return 1;
  }

  std::printf("\nfile count over time:\n");
  sim::TablePrinter series({"t(min)", "files"});
  const auto& points = metrics.Series("files_total");
  for (size_t i = 0; i < points.size(); i += 3) {
    series.AddRow({std::to_string(points[i].time / kMinute),
                   sim::Fmt(points[i].value, 0)});
  }
  std::printf("%s\n", series.ToString().c_str());
  PrintSummary(env, metrics, service.get(), initial,
               driver.total_read_seconds());
  const int export_rc = ExportObservability(flags, trace.get(), metrics);
  if (flags.check_invariants) {
    if (const int rc = AuditInvariants(env); rc != 0) return rc;
  }
  return export_rc;
}

int RunFleet(const Flags& flags) {
  auto env_options = EnvOptionsFor(flags);
  if (!env_options.ok()) {
    std::fprintf(stderr, "%s\n", env_options.status().ToString().c_str());
    return 2;
  }
  auto trace_level = obs::TraceLevelByName(flags.trace_level);
  if (!trace_level.ok()) {
    std::fprintf(stderr, "%s\n", trace_level.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<obs::TraceRecorder> trace;
  if (*trace_level != obs::TraceLevel::kOff) {
    obs::TraceRecorder::Options trace_options;
    trace_options.level = *trace_level;
    trace = std::make_unique<obs::TraceRecorder>(trace_options);
    env_options->trace = trace.get();
  }
  sim::SimEnvironment env(*env_options);
  workload::FleetOptions options;
  options.seed = flags.seed;
  workload::FleetWorkload fleet(options);
  std::printf("setting up the table fleet...\n");
  // Scripted data loads treat failures as fatal; injections only arm for
  // the measured run (and pause around each day's onboarding below).
  env.fault_injector().set_armed(false);
  Status setup = fleet.Setup(&env.catalog(), &env.query_engine(),
                             &env.control_plane(), 0);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  env.fault_injector().set_armed(true);
  const int64_t initial = env.TotalFileCount();

  ThreadPool pool(flags.pool_size);
  auto service = MakeService(&env, flags, kDay, &pool, trace.get());
  sim::MetricsRecorder metrics;
  sim::DriverOptions driver_options;
  driver_options.deferred_compaction = flags.deferred;
  driver_options.retention_interval = kDay;
  sim::EventDriver driver(&env, &metrics, driver_options);
  if (service != nullptr) driver.AttachService(service.get());

  std::printf("running %d fleet days (strategy=%s, k=%lld%s)...\n",
              flags.days, flags.strategy.c_str(),
              static_cast<long long>(flags.k),
              flags.budget > 0 ? ", budgeted" : "");
  sim::TablePrinter daily({"day", "fleet files", "compaction commits"});
  int64_t commits_before = 0;
  for (int day = 0; day < flags.days; ++day) {
    env.fault_injector().set_armed(false);
    Status onboard = fleet.OnboardNewTables(&env.catalog(),
                                            &env.query_engine(), day,
                                            env.clock().Now());
    env.fault_injector().set_armed(true);
    if (!onboard.ok()) {
      std::fprintf(stderr, "onboarding failed: %s\n",
                   onboard.ToString().c_str());
      return 1;
    }
    Status run = driver.Run(fleet.EventsForDay(day),
                            static_cast<SimTime>(day + 1) * kDay);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n", run.ToString().c_str());
      return 1;
    }
    const int64_t commits = env.compaction_runner().total_committed();
    daily.AddRow({std::to_string(day), std::to_string(env.TotalFileCount()),
                  std::to_string(commits - commits_before)});
    commits_before = commits;
  }
  std::printf("%s\n", daily.ToString().c_str());
  PrintSummary(env, metrics, service.get(), initial,
               driver.total_read_seconds());

  // End-of-run operator report: the §8 write-configuration advisor.
  core::WriteConfigAdvisor advisor;
  auto advice = advisor.Analyze(&env.catalog());
  if (advice.ok() && !advice->empty()) {
    std::printf("\ntop write-configuration recommendations:\n");
    for (size_t i = 0; i < advice->size() && i < 5; ++i) {
      const core::WriteAdvice& a = (*advice)[i];
      std::printf("  [%s] %s: %s\n", core::AdviceKindName(a.kind),
                  a.table.c_str(), a.message.c_str());
    }
  }
  const int export_rc = ExportObservability(flags, trace.get(), metrics);
  if (flags.check_invariants) {
    if (const int rc = AuditInvariants(env); rc != 0) return rc;
  }
  return export_rc;
}

int RunFleetSim(const Flags& flags) {
  ThreadPool pool(flags.pool_size);
  sim::FleetSimOptions options;
  options.days = flags.days;
  options.seed = flags.seed;
  options.shards = flags.sim_shards;
  options.sharded = flags.sharded_sim;
  options.pool = flags.sharded_sim ? &pool : nullptr;
  options.fleet.num_databases = flags.databases;
  options.fleet.seed = flags.seed;
  options.driver.sample_interval = 4 * kHour;
  options.driver.retention_interval = kDay;
  options.check_invariants = flags.check_invariants;
  options.max_resident_lanes = flags.max_resident_lanes;
  options.evict_after_idle_hours = flags.evict_after_idle_hours;
  if (flags.lane_mode == "eager") {
    options.lane_mode = sim::LaneMode::kAdvanceAll;
  } else if (flags.lane_mode != "active") {
    std::fprintf(stderr, "unknown --lane-mode: %s (want active|eager)\n",
                 flags.lane_mode.c_str());
    return 2;
  }
  auto env_options = EnvOptionsFor(flags);
  if (!env_options.ok()) {
    std::fprintf(stderr, "%s\n", env_options.status().ToString().c_str());
    return 2;
  }
  options.env = *env_options;
  auto trace_level = obs::TraceLevelByName(flags.trace_level);
  if (!trace_level.ok()) {
    std::fprintf(stderr, "%s\n", trace_level.status().ToString().c_str());
    return 2;
  }
  options.trace_level = *trace_level;
  options.trace_out = flags.trace_out;
  if (flags.strategy != "none") {
    // Per-lane AutoComp control loop: every tenant database runs the
    // daily MOOP pipeline inside its own lane.
    auto scope = ScopeFor(flags.strategy);
    AUTOCOMP_CHECK(scope.ok()) << scope.status();
    auto policy = PolicyFor(flags);  // validated in main(); cannot fail here
    AUTOCOMP_CHECK(policy.ok()) << policy.status();
    sim::StrategyPreset preset;
    preset.scope = *scope;
    preset.policy = *policy;
    preset.k = flags.k;
    if (flags.budget > 0) preset.budget_gb_hours = flags.budget;
    preset.trigger_interval = kDay;
    preset.first_trigger = kDay;
    preset.deferred_act = flags.deferred;
    preset.cache_stats = flags.stats_cache;
    preset.stats_cache_capacity = flags.stats_cache_capacity;
    preset.use_stats_index = flags.stats_index;
    preset.cross_check_stats_index = flags.cross_check_stats_index;
    options.driver.deferred_compaction = flags.deferred;
    options.preset = preset;
  }

  std::printf("replaying %d fleet days across %d tenant databases "
              "(%s, shards=%d, pool=%d, lanes %s)...\n",
              flags.days, flags.databases,
              flags.sharded_sim ? "sharded" : "sequential",
              flags.sim_shards, pool.worker_count(),
              flags.lane_mode.c_str());
  sim::FleetSimulation simulation(std::move(options));
  const auto start = std::chrono::steady_clock::now();
  auto result = simulation.Run();
  const auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  sim::TablePrinter table({"metric", "value"});
  table.AddRow({"events executed",
                std::to_string(result->events_executed)});
  table.AddRow({"final files", std::to_string(result->total_files)});
  table.AddRow({"open() calls", std::to_string(result->open_calls)});
  table.AddRow({"open() timeouts",
                std::to_string(result->metrics.TotalCount("open_timeouts"))});
  table.AddRow(
      {"write queries",
       std::to_string(result->metrics.TotalCount("write_queries"))});
  table.AddRow(
      {"write failures",
       std::to_string(result->metrics.TotalCount("write_failures"))});
  table.AddRow(
      {"client conflicts",
       std::to_string(result->metrics.TotalCount("client_conflicts"))});
  if (flags.fault_profile != "none") {
    table.AddRow({"faults injected",
                  std::to_string(result->faults_injected)});
    table.AddRow(
        {"commit/runner retries",
         std::to_string(result->metrics.TotalCount("compaction_retries"))});
    table.AddRow(
        {"abandoned compactions",
         std::to_string(result->metrics.TotalCount("compaction_abandoned"))});
  }
  if (flags.check_invariants) {
    table.AddRow({"invariant audits", "OK (every epoch + final)"});
  }
  if (*trace_level != obs::TraceLevel::kOff) {
    table.AddRow({"trace digest", result->trace_digest.ToString()});
  }
  table.AddRow({"lanes hydrated",
                std::to_string(result->lanes_hydrated) + "/" +
                    std::to_string(result->lanes_total) + " (peak resident " +
                    std::to_string(result->peak_resident_lanes) +
                    ", ghosted " + std::to_string(result->lanes_ghosted) +
                    ")"});
  if (flags.max_resident_lanes > 0 || flags.evict_after_idle_hours > 0) {
    table.AddRow({"lanes evicted",
                  std::to_string(result->lanes_evicted) + " (retired early " +
                      std::to_string(result->lanes_retired) + ")"});
    table.AddRow({"lanes restored",
                  std::to_string(result->lanes_restored) + " (" +
                      sim::Fmt(result->restore_ms, 1) + " ms host)"});
    table.AddRow(
        {"checkpoint peak",
         sim::Fmt(static_cast<double>(result->checkpoint_bytes) / kMiB, 2) +
             " MiB"});
  }
  table.AddRow({"setup (ms)", sim::Fmt(result->setup_ms, 1)});
  table.AddRow({"wall-clock (ms)", sim::Fmt(wall_ms, 1)});
  table.AddRow(
      {"events/sec",
       sim::Fmt(wall_ms > 0 ? static_cast<double>(result->events_executed) /
                                  (wall_ms / 1e3)
                            : 0,
                0)});
  std::printf("%s", table.ToString().c_str());
  if (!flags.trace_out.empty() && *trace_level != obs::TraceLevel::kOff) {
    std::printf("trace written to %s\n", flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty()) {
    Status s = obs::WritePrometheusText(result->metrics.Snapshot(),
                                        flags.metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", flags.metrics_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    PrintUsage();
    return 2;
  }
  if (flags.strategy != "none" && !ScopeFor(flags.strategy).ok()) {
    PrintUsage();
    return 2;
  }
  if (auto policy = PolicyFor(flags); !policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }
  Logger::set_threshold(LogLevel::kWarn);
  if (flags.scenario == "cab") return RunCab(flags);
  if (flags.scenario == "fleetsim") return RunFleetSim(flags);
  return RunFleet(flags);
}
