#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + tests, then the concurrency-,
# fault- and policy-labelled suites under both sanitizer configurations
# (ASan+UBSan and TSan). Usage:
#   tools/check.sh [jobs]        - the pre-merge check
#   tools/check.sh coverage [jobs]
#       Coverage gate only: builds with -DAUTOCOMP_COVERAGE=ON, runs the
#       suite, and measures line coverage of src/core + src/obs. With
#       lcov/genhtml installed an HTML report lands in
#       build-cov/coverage-html; without them a raw-gcov aggregate is
#       used. Fails when aggregate line coverage is below 80%.
#   tools/check.sh rss [jobs]
#       Footprint report: builds the default tree, then runs every test
#       binary under tools/rss_runner (fork/exec/wait4) and prints one
#       peak-RSS line per suite, sorted descending — the quick way to
#       spot a suite whose memory crept up without rerunning the bench.
#       Fails if any suite exits nonzero.
#
# Build trees:
#   build/       - default RelWithDebInfo, full ctest suite
#   build-asan/  - -DAUTOCOMP_SANITIZE=address (ASan+UBSan), ctest -L 'concurrency|fault|policy'
#   build-tsan/  - -DAUTOCOMP_SANITIZE=thread, ctest -L 'concurrency|fault|policy'
#   build-cov/   - -DAUTOCOMP_COVERAGE=ON (coverage mode only)

set -euo pipefail

cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# Aggregate line coverage (percent) of src/core + src/obs from raw gcov
# summaries over the library objects' .gcda files. Primary sources only
# (.cc): header/inline lines would be double-counted across translation
# units without lcov's deduplication.
gcov_line_coverage() {
  local build="$1"
  find "$build/src/core" "$build/src/obs" -name '*.gcda' \
      -exec gcov -n {} + 2>/dev/null |
    awk '
      /^File /            { keep = ($0 ~ /src\/(core|obs)\/.*\.cc/) }
      /^Lines executed:/  {
        if (!keep) next
        line = $0
        sub(/^Lines executed:/, "", line)
        split(line, a, "% of ")
        covered += a[1] * a[2] / 100.0
        total += a[2]
      }
      END { if (total == 0) print "0.00"; else printf "%.2f\n", covered * 100.0 / total }
    '
}

coverage_check() {
  local jobs="$1"
  local build=build-cov
  local threshold=80
  run cmake -B "$build" -S . -DAUTOCOMP_COVERAGE=ON \
      -DAUTOCOMP_BUILD_BENCHMARKS=OFF -DAUTOCOMP_BUILD_EXAMPLES=OFF
  run cmake --build "$build" -j "$jobs"
  run ctest --test-dir "$build" --output-on-failure -j "$jobs"

  local pct
  if command -v lcov >/dev/null && command -v genhtml >/dev/null; then
    run lcov --capture --directory "$build" --output-file "$build/coverage.info" \
        --ignore-errors mismatch,negative
    run lcov --extract "$build/coverage.info" "*/src/core/*" "*/src/obs/*" \
        --output-file "$build/coverage.core-obs.info"
    run genhtml "$build/coverage.core-obs.info" \
        --output-directory "$build/coverage-html"
    pct=$(lcov --summary "$build/coverage.core-obs.info" 2>&1 |
          awk '/lines\.*:/ { sub(/%.*/, "", $2); print $2 }')
    echo "HTML report: $build/coverage-html/index.html"
  else
    echo "lcov/genhtml not found; falling back to raw gcov aggregation"
    pct=$(gcov_line_coverage "$build")
  fi

  echo "src/core + src/obs line coverage: ${pct}% (threshold ${threshold}%)"
  if ! awk -v p="$pct" -v t="$threshold" 'BEGIN { exit !(p + 0 >= t) }'; then
    echo "FAIL: line coverage ${pct}% is below ${threshold}%"
    exit 1
  fi
  echo "Coverage check passed."
}

rss_check() {
  local jobs="$1"
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  run cmake --build build -j "$jobs"
  local failures=0 report=""
  for t in build/tests/*_test; do
    [[ -x "$t" ]] || continue
    echo "==> rss_runner $t"
    local line
    if ! line=$(./build/tools/rss_runner "$t" | tail -n 1); then
      echo "FAIL: $t exited nonzero"
      failures=$((failures + 1))
      continue
    fi
    report+="$line"$'\n'
  done
  echo
  echo "peak RSS per test suite (wait4 ru_maxrss, descending):"
  printf '%s' "$report" | sort -k2 -rn
  if (( failures > 0 )); then
    echo "FAIL: $failures suite(s) exited nonzero"
    exit 1
  fi
}

if [[ "${1:-}" == "coverage" ]]; then
  coverage_check "${2:-$(nproc)}"
  exit 0
fi

if [[ "${1:-}" == "rss" ]]; then
  rss_check "${2:-$(nproc)}"
  exit 0
fi

JOBS="${1:-$(nproc)}"

# --- Tier 1: default build, full suite.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "${JOBS}"
run ctest --test-dir build --output-on-failure -j "${JOBS}"

# --- Concurrency + fault + policy suites under ASan+UBSan.
run cmake -B build-asan -S . -DAUTOCOMP_SANITIZE=address \
    -DAUTOCOMP_BUILD_BENCHMARKS=OFF -DAUTOCOMP_BUILD_EXAMPLES=OFF
run cmake --build build-asan -j "${JOBS}"
run ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L 'concurrency|fault|policy'

# --- Concurrency + fault + policy suites under TSan.
run cmake -B build-tsan -S . -DAUTOCOMP_SANITIZE=thread \
    -DAUTOCOMP_BUILD_BENCHMARKS=OFF -DAUTOCOMP_BUILD_EXAMPLES=OFF
run cmake --build build-tsan -j "${JOBS}"
run ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L 'concurrency|fault|policy'

echo "All checks passed."
