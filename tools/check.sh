#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + tests, then the concurrency- and
# fault-labelled suites under both sanitizer configurations (ASan+UBSan
# and TSan). Usage: tools/check.sh [jobs]
#
# Build trees:
#   build/       - default RelWithDebInfo, full ctest suite
#   build-asan/  - -DAUTOCOMP_SANITIZE=address (ASan+UBSan), ctest -L 'concurrency|fault'
#   build-tsan/  - -DAUTOCOMP_SANITIZE=thread, ctest -L 'concurrency|fault'

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run() {
  echo "==> $*"
  "$@"
}

# --- Tier 1: default build, full suite.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build build -j "${JOBS}"
run ctest --test-dir build --output-on-failure -j "${JOBS}"

# --- Concurrency + fault suites under ASan+UBSan.
run cmake -B build-asan -S . -DAUTOCOMP_SANITIZE=address \
    -DAUTOCOMP_BUILD_BENCHMARKS=OFF -DAUTOCOMP_BUILD_EXAMPLES=OFF
run cmake --build build-asan -j "${JOBS}"
run ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L 'concurrency|fault'

# --- Concurrency + fault suites under TSan.
run cmake -B build-tsan -S . -DAUTOCOMP_SANITIZE=thread \
    -DAUTOCOMP_BUILD_BENCHMARKS=OFF -DAUTOCOMP_BUILD_EXAMPLES=OFF
run cmake --build build-tsan -j "${JOBS}"
run ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L 'concurrency|fault'

echo "All checks passed."
