/// \file rss_runner.cc
/// \brief fork/exec/wait4 wrapper reporting a child's peak RSS.
///
/// `tools/check.sh rss` runs every test binary under this wrapper and
/// prints one "RSS <MB> <name>" line per suite from wait4's ru_maxrss —
/// the same getrusage accounting bench_sim_throughput's forked scale
/// configs use, so a test whose footprint creeps up is visible without
/// rerunning the full bench. Exit status is the child's.

#include <cstdio>
#include <cstring>

#if defined(__unix__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rss_runner <command> [args...]\n");
    return 2;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 2;
  }
  if (pid == 0) {
    execvp(argv[1], argv + 1);
    std::perror(argv[1]);
    _exit(127);
  }
  struct rusage ru;
  std::memset(&ru, 0, sizeof ru);
  int status = 0;
  if (wait4(pid, &status, 0, &ru) != pid) {
    std::perror("wait4");
    return 2;
  }
  // Linux reports ru_maxrss in kilobytes.
  std::printf("RSS %.1f MB %s\n", static_cast<double>(ru.ru_maxrss) / 1024.0,
              argv[1]);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 2;
}
#else
int main() {
  std::fprintf(stderr, "rss_runner: getrusage child accounting needs a "
                       "unix platform\n");
  return 2;
}
#endif
